//! Q-gram sets (paper §4.1, "Q-gram Set").
//!
//! Given a string `s` and a positive integer `q`, `QG_q(s)` is the **set** of
//! all length-`q` substrings of `s`. The paper's example:
//! `QG_3("boeing") = {boe, oei, ein, ing}`.
//!
//! Q-grams are measured in Unicode scalar values, consistent with
//! [`crate::edit_distance`].

/// The set of distinct q-grams of `s`, in first-occurrence order.
///
/// Returns an empty vector when `|s| < q` — the paper handles short tokens
/// separately (the min-hash signature of a token shorter than `q` is the
/// token itself, §4.2).
///
/// ```
/// let g = fm_text::qgram_set("boeing", 3);
/// assert_eq!(g, vec!["boe", "oei", "ein", "ing"]);
/// ```
pub fn qgram_set(s: &str, q: usize) -> Vec<String> {
    assert!(q > 0, "q must be positive");
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < q {
        return Vec::new();
    }
    let mut out: Vec<String> = Vec::with_capacity(chars.len() - q + 1);
    for window in chars.windows(q) {
        let gram: String = window.iter().collect();
        if !out.contains(&gram) {
            out.push(gram);
        }
    }
    out
}

/// The q-gram count filter upper bound on string similarity (paper Lemma
/// 4.2, citing Jokinen & Ukkonen `[15]`):
///
/// `1 − ed(s1, s2) ≤ count / (m·q) + d`
///
/// where `m = max(|s1|, |s2|)`, `count` is the number of *positional*
/// q-grams of the longer string that occur as substrings of the shorter
/// string, and `d = (1 − 1/q)(1 + 1/m)`.
///
/// Two deviations from the lemma as printed in the paper, both needed for
/// the inequality to actually hold (see `DESIGN.md`):
///
/// 1. the paper prints `d = (1 − 1/q)(1 − 1/m)`; deriving from the classical
///    count filter (each edit operation destroys at most `q` of the longer
///    string's `m − q + 1` positional q-grams, so
///    `count ≥ m − q + 1 − k·q` for `k` edit operations) gives the `(1 + 1/m)`
///    factor — the printed minus sign is a typo, falsifiable with
///    `s1 = "boeing"`, `s2 = "beoing"`, `q = 2`;
/// 2. `count` is positional: collapsing duplicate q-grams into a set (as
///    min-hash later does) can only *lower* the left-over commonality, which
///    is fine for the algorithm (it only loosens an upper bound used as a
///    similarity *estimate*) but breaks the lemma for strings with repeated
///    q-grams such as `"aaaa"`.
///
/// Returns the right-hand side; used in tests to validate the lemma and by
/// `fm-core` to justify the adjustment term `d_q = 1 − 1/q` of `fms_apx`.
pub fn qgram_similarity_upper_bound(s1: &str, s2: &str, q: usize) -> f64 {
    assert!(q > 0, "q must be positive");
    let c1: Vec<char> = s1.chars().collect();
    let c2: Vec<char> = s2.chars().collect();
    let (long, short) = if c1.len() >= c2.len() {
        (&c1, &c2)
    } else {
        (&c2, &c1)
    };
    let m = long.len();
    if m == 0 {
        return 1.0;
    }
    let count = if long.len() < q {
        0
    } else {
        long.windows(q)
            .filter(|w| short.windows(q).any(|v| v == *w))
            .count()
    };
    let d = (1.0 - 1.0 / q as f64) * (1.0 + 1.0 / m as f64);
    count as f64 / (m as f64 * q as f64) + d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance::normalized_edit_distance;

    #[test]
    fn paper_example_boeing() {
        assert_eq!(qgram_set("boeing", 3), vec!["boe", "oei", "ein", "ing"]);
    }

    #[test]
    fn short_strings_have_no_qgrams() {
        assert!(qgram_set("wa", 3).is_empty());
        assert!(qgram_set("", 3).is_empty());
        assert!(qgram_set("ab", 4).is_empty());
    }

    #[test]
    fn exact_length_yields_single_gram() {
        assert_eq!(qgram_set("wa", 2), vec!["wa"]);
        assert_eq!(qgram_set("abcd", 4), vec!["abcd"]);
    }

    #[test]
    fn q_of_one_is_character_set() {
        assert_eq!(qgram_set("aab", 1), vec!["a", "b"]);
    }

    #[test]
    fn duplicates_collapse() {
        // "aaaa" has a single distinct 2-gram "aa".
        assert_eq!(qgram_set("aaaa", 2), vec!["aa"]);
        // "banana": an/na repeat.
        assert_eq!(qgram_set("banana", 2), vec!["ba", "an", "na"]);
    }

    #[test]
    fn unicode_windows() {
        assert_eq!(qgram_set("müne", 3), vec!["mün", "üne"]);
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn zero_q_panics() {
        let _ = qgram_set("abc", 0);
    }

    #[test]
    fn lemma_4_2_holds_on_paper_tokens() {
        // 1 - ed(s1,s2) <= count/(m q) + d for the paper's running examples.
        let pairs = [
            ("boeing", "beoing"),
            ("company", "corporation"),
            ("corp", "corporation"),
            ("98004", "98014"),
            ("seattle", "seattle"),
            ("bon", "boeing"),
            ("aaaa", "aaaa"), // repeated q-grams, needs positional counting
        ];
        for q in [2usize, 3, 4] {
            for (a, b) in pairs {
                let lhs = 1.0 - normalized_edit_distance(a, b);
                let rhs = qgram_similarity_upper_bound(a, b, q);
                assert!(
                    lhs <= rhs + 1e-12,
                    "lemma 4.2 violated: q={q} a={a} b={b} lhs={lhs} rhs={rhs}"
                );
            }
        }
    }

    #[test]
    fn printed_lemma_counterexample() {
        // Documents why we corrected the paper's printed adjustment term:
        // with d = (1-1/q)(1-1/m) and set-based intersection the bound fails
        // for boeing/beoing at q=2.
        let (a, b, q) = ("boeing", "beoing", 2usize);
        let g1 = qgram_set(a, q);
        let g2 = qgram_set(b, q);
        let inter = g1.iter().filter(|g| g2.contains(g)).count();
        let m = 6.0;
        let printed_d = (1.0 - 1.0 / q as f64) * (1.0 - 1.0 / m);
        let printed_rhs = inter as f64 / (m * q as f64) + printed_d;
        let lhs = 1.0 - normalized_edit_distance(a, b);
        assert!(
            lhs > printed_rhs,
            "expected the printed lemma to fail here; if this starts passing \
             the counterexample is stale"
        );
    }
}
