//! Character edit distance (paper §3, "Edit Distance").
//!
//! `ed(s1, s2)` is the minimum number of character edit operations (delete,
//! insert, substitute) required to transform `s1` into `s2`, **normalized by
//! the maximum of the lengths** of the two strings. The paper's worked
//! example: `ed("company", "corporation") = 7/11 ≈ 0.64`.
//!
//! Lengths are measured in Unicode scalar values (`char`s), matching the
//! intuitive "character" of the paper for the ASCII data it evaluates on
//! while remaining well-defined for non-ASCII tokens.

/// Reusable scratch space for edit-distance computations.
///
/// The dynamic program is O(|a|·|b|) time and O(min(|a|,|b|)) space; reusing
/// the buffer across the millions of token comparisons a single fuzzy-match
/// batch performs avoids per-call allocations (tokens are short, but the
/// call count is huge).
#[derive(Debug, Default)]
pub struct EditBuffer {
    row: Vec<u32>,
    a_chars: Vec<char>,
    b_chars: Vec<char>,
}

impl EditBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Unnormalized Levenshtein distance between `a` and `b`.
    pub fn levenshtein(&mut self, a: &str, b: &str) -> u32 {
        self.a_chars.clear();
        self.a_chars.extend(a.chars());
        self.b_chars.clear();
        self.b_chars.extend(b.chars());
        // Ensure the DP row is the shorter side.
        if self.a_chars.len() < self.b_chars.len() {
            std::mem::swap(&mut self.a_chars, &mut self.b_chars);
        }
        let (long, short) = (&self.a_chars, &self.b_chars);
        if short.is_empty() {
            return long.len() as u32;
        }
        let row = &mut self.row;
        row.clear();
        row.extend(0..=short.len() as u32);
        for (i, &ca) in long.iter().enumerate() {
            let mut prev_diag = row[0];
            row[0] = i as u32 + 1;
            for (j, &cb) in short.iter().enumerate() {
                let sub = prev_diag + u32::from(ca != cb);
                let del = row[j] + 1; // delete from `long`
                let ins = row[j + 1] + 1; // insert into `long`
                prev_diag = row[j + 1];
                row[j + 1] = sub.min(del).min(ins);
            }
        }
        row[short.len()]
    }

    /// Normalized edit distance `ed(a, b) = lev(a, b) / max(|a|, |b|)`.
    ///
    /// Returns 0.0 for two empty strings (they are identical).
    pub fn normalized(&mut self, a: &str, b: &str) -> f64 {
        let lev = self.levenshtein(a, b);
        let max_len = self.a_chars.len().max(self.b_chars.len());
        if max_len == 0 {
            0.0
        } else {
            f64::from(lev) / max_len as f64
        }
    }
}

/// Unnormalized Levenshtein distance. Allocation-light one-shot wrapper; use
/// [`EditBuffer`] in hot loops.
pub fn levenshtein(a: &str, b: &str) -> u32 {
    EditBuffer::new().levenshtein(a, b)
}

/// Normalized edit distance per the paper: `lev(a, b) / max(|a|, |b|)`,
/// always in `[0, 1]`.
///
/// ```
/// let d = fm_text::normalized_edit_distance("company", "corporation");
/// assert!((d - 7.0 / 11.0).abs() < 1e-12); // the paper's worked example
/// ```
pub fn normalized_edit_distance(a: &str, b: &str) -> f64 {
    EditBuffer::new().normalized(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings() {
        assert_eq!(levenshtein("boeing", "boeing"), 0);
        assert_eq!(normalized_edit_distance("boeing", "boeing"), 0.0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(normalized_edit_distance("", ""), 0.0);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(normalized_edit_distance("", "abc"), 1.0);
        assert_eq!(levenshtein("abc", ""), 3);
    }

    #[test]
    fn paper_company_corporation() {
        // Paper §3: ed("company", "corporation") = 7/11 ≈ 0.64.
        assert_eq!(levenshtein("company", "corporation"), 7);
        let d = normalized_edit_distance("company", "corporation");
        assert!((d - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn paper_beoing_boeing() {
        // Paper §3.1: 'beoing' -> 'boeing' are at edit distance 0.33
        // (transposition realized as 2 substitutions over 6 chars = 1/3).
        assert_eq!(levenshtein("beoing", "boeing"), 2);
        let d = normalized_edit_distance("beoing", "boeing");
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn classic_kitten_sitting() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn single_edits() {
        assert_eq!(levenshtein("boeing", "boeings"), 1); // insert
        assert_eq!(levenshtein("boeing", "boein"), 1); // delete
        assert_eq!(levenshtein("boeing", "boking"), 1); // substitute
    }

    #[test]
    fn asymmetric_lengths() {
        assert_eq!(levenshtein("a", "abcdef"), 5);
        assert_eq!(normalized_edit_distance("a", "abcdef"), 5.0 / 6.0);
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        // "ü" is 2 bytes but one char: distance 1 over max-len 4.
        assert_eq!(levenshtein("münc", "munc"), 1);
        assert_eq!(normalized_edit_distance("münc", "munc"), 0.25);
    }

    #[test]
    fn buffer_reuse_is_consistent() {
        let mut buf = EditBuffer::new();
        let one_shot = levenshtein("corporation", "corp");
        for _ in 0..3 {
            assert_eq!(buf.levenshtein("corporation", "corp"), one_shot);
        }
        // Interleave different sizes to stress buffer resizing.
        assert_eq!(buf.levenshtein("", "abc"), 3);
        assert_eq!(buf.levenshtein("corporation", "corp"), one_shot);
    }

    #[test]
    fn symmetry() {
        let pairs = [
            ("company", "corporation"),
            ("boeing", "bon"),
            ("98004", "98014"),
            ("", "x"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert_eq!(
                normalized_edit_distance(a, b),
                normalized_edit_distance(b, a)
            );
        }
    }

    #[test]
    fn normalized_bounds() {
        for (a, b) in [("abc", "xyz"), ("abc", "abc"), ("", "zzzz"), ("q", "")] {
            let d = normalized_edit_distance(a, b);
            assert!((0.0..=1.0).contains(&d));
        }
        // Completely disjoint equal-length strings hit exactly 1.0.
        assert_eq!(normalized_edit_distance("aaa", "bbb"), 1.0);
    }

    #[test]
    fn triangle_inequality_on_unnormalized() {
        let words = ["boeing", "beoing", "bon", "company", "corporation", ""];
        for a in words {
            for b in words {
                for c in words {
                    let ab = levenshtein(a, b);
                    let bc = levenshtein(b, c);
                    let ac = levenshtein(a, c);
                    assert!(ac <= ab + bc, "triangle violated for {a},{b},{c}");
                }
            }
        }
    }
}
