//! Min-hash signatures (paper §4.1, "Min-hash Similarity").
//!
//! For `H` seeded hash functions `h_1..h_H`, the min-hash signature of a set
//! `S` is `[argmin_{a∈S} h_1(a), …, argmin_{a∈S} h_H(a)]`. The fraction of
//! agreeing coordinates between two signatures is an unbiased estimator of
//! the Jaccard coefficient of the underlying sets (Broder; Cohen).
//!
//! The paper applies this to the q-gram sets of tokens and **stores the
//! winning q-gram strings themselves** in the ETI (the signature coordinates
//! in Table 3 are q-grams like `oei`, `ing`), so [`MinHasher::signature`]
//! returns the argmin q-grams, not their hash values.
//!
//! A token shorter than `q` has no q-grams; per §4.2 its signature is the
//! token itself (a single coordinate).

use crate::hash::{derive_seeds, hash_str};
use crate::qgram::qgram_set;

/// A min-hash signature: the list of argmin q-grams, one per coordinate.
///
/// Either `H` coordinates (token length ≥ q) or a single coordinate holding
/// the whole token (short-token case).
pub type Signature = Vec<String>;

/// Computes min-hash signatures of tokens over their q-gram sets.
///
/// Deterministic: two `MinHasher`s constructed with the same `(h, q, seed)`
/// produce identical signatures, which is what lets the query processor
/// probe an ETI built in an earlier session.
///
/// ```
/// use fm_text::MinHasher;
///
/// let mh = MinHasher::new(3, 3, 42);
/// let sig = mh.signature("boeing");
/// assert_eq!(sig.len(), 3);                  // H coordinates
/// assert_eq!(mh.signature("boeing"), sig);   // deterministic
/// assert_eq!(mh.similarity("boeing", "boeing"), 1.0);
/// // Short tokens are their own signature (paper §4.2).
/// assert_eq!(mh.signature("wa"), vec!["wa"]);
/// ```
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
    q: usize,
}

impl MinHasher {
    /// A hasher producing `h` coordinates over `q`-gram sets, with all hash
    /// functions derived from `seed`.
    ///
    /// `h = 0` is allowed and yields empty signatures for long tokens; it is
    /// used by the paper's `Q+T_0` (token-only) strategy.
    pub fn new(h: usize, q: usize, seed: u64) -> Self {
        assert!(q > 0, "q must be positive");
        MinHasher {
            seeds: derive_seeds(seed ^ 0x6d68_6173_6865_7221, h),
            q,
        }
    }

    /// Number of coordinates `H`.
    pub fn h(&self) -> usize {
        self.seeds.len()
    }

    /// The q-gram size.
    pub fn q(&self) -> usize {
        self.q
    }

    /// The min-hash signature of `token`.
    ///
    /// Returns `[token]` when the token is shorter than `q` (paper §4.2),
    /// otherwise the `H` argmin q-grams.
    pub fn signature(&self, token: &str) -> Signature {
        let grams = qgram_set(token, self.q);
        if grams.is_empty() {
            return vec![token.to_string()];
        }
        self.seeds
            .iter()
            .map(|&seed| {
                grams
                    .iter()
                    .min_by_key(|g| hash_str(seed, g))
                    .expect("non-empty gram set") // lint:allow(expect): emptiness returned early above
                    .clone()
            })
            .collect()
    }

    /// `sim_mh(t1, t2)`: fraction of agreeing signature coordinates
    /// (paper §4.1). For short tokens this degenerates to exact equality.
    pub fn similarity(&self, t1: &str, t2: &str) -> f64 {
        let s1 = self.signature(t1);
        let s2 = self.signature(t2);
        signature_similarity(&s1, &s2)
    }
}

/// Fraction of agreeing coordinates between two signatures.
///
/// Signatures of different lengths (a short token vs a long one) share no
/// coordinate structure; the comparison then checks whether the single
/// short-token coordinate equals the other side's coordinates positionally —
/// in practice such pairs only agree when the tokens are equal.
pub fn signature_similarity(s1: &Signature, s2: &Signature) -> f64 {
    let n = s1.len().max(s2.len());
    if n == 0 {
        return 1.0;
    }
    let agree = s1.iter().zip(s2.iter()).filter(|(a, b)| a == b).count();
    agree as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::jaccard;

    #[test]
    fn deterministic_across_instances() {
        let a = MinHasher::new(4, 3, 42);
        let b = MinHasher::new(4, 3, 42);
        for t in ["boeing", "corporation", "seattle", "wa"] {
            assert_eq!(a.signature(t), b.signature(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = MinHasher::new(8, 3, 1);
        let b = MinHasher::new(8, 3, 2);
        // With 8 coordinates over a 10-gram set, identical signatures under
        // different seeds would be astronomically unlikely.
        assert_ne!(a.signature("corporation"), b.signature("corporation"));
    }

    #[test]
    fn signature_coordinates_are_qgrams_of_the_token() {
        let mh = MinHasher::new(6, 3, 7);
        let grams = qgram_set("boeing", 3);
        for coord in mh.signature("boeing") {
            assert!(grams.contains(&coord), "{coord} not a 3-gram of boeing");
        }
    }

    #[test]
    fn short_token_signature_is_the_token() {
        let mh = MinHasher::new(4, 3, 7);
        assert_eq!(mh.signature("wa"), vec!["wa"]);
        assert_eq!(mh.signature(""), vec![""]);
        // Length exactly q-1.
        assert_eq!(mh.signature("ab"), vec!["ab"]);
    }

    #[test]
    fn h_zero_yields_empty_signature_for_long_tokens() {
        let mh = MinHasher::new(0, 3, 7);
        assert!(mh.signature("boeing").is_empty());
        // Short tokens still collapse to themselves.
        assert_eq!(mh.signature("wa"), vec!["wa"]);
    }

    #[test]
    fn identical_tokens_have_similarity_one() {
        let mh = MinHasher::new(4, 3, 9);
        assert_eq!(mh.similarity("seattle", "seattle"), 1.0);
        assert_eq!(mh.similarity("wa", "wa"), 1.0);
    }

    #[test]
    fn disjoint_tokens_have_similarity_zero() {
        let mh = MinHasher::new(4, 3, 9);
        assert_eq!(mh.similarity("aaaa", "zzzz"), 0.0);
    }

    #[test]
    fn short_vs_long_token_similarity_zero() {
        let mh = MinHasher::new(4, 3, 9);
        assert_eq!(mh.similarity("wa", "washington"), 0.0);
    }

    #[test]
    fn estimator_is_close_to_jaccard_for_large_h() {
        // E[sim_mh] = jaccard (paper §4.1); with H = 512 the estimate should
        // land within ±0.1 of the true coefficient.
        let mh = MinHasher::new(512, 3, 1234);
        let pairs = [
            ("boeing", "beoing"),
            ("corporation", "corporal"),
            ("company", "corporation"),
            ("seattle", "seattle"),
        ];
        for (a, b) in pairs {
            let truth = jaccard(&qgram_set(a, 3), &qgram_set(b, 3));
            let est = mh.similarity(a, b);
            assert!(
                (est - truth).abs() < 0.1,
                "minhash estimate {est} far from jaccard {truth} for {a}/{b}"
            );
        }
    }

    #[test]
    fn estimator_unbiasedness_over_seeds() {
        // Average the H=1 estimator over many independent seeds; the mean
        // must converge to the Jaccard coefficient.
        let (a, b) = ("corporation", "corporal");
        let truth = jaccard(&qgram_set(a, 3), &qgram_set(b, 3));
        let n = 2000;
        let mut sum = 0.0;
        for seed in 0..n {
            let mh = MinHasher::new(1, 3, seed);
            sum += mh.similarity(a, b);
        }
        let mean = sum / n as f64;
        assert!(
            (mean - truth).abs() < 0.05,
            "empirical mean {mean} not near jaccard {truth}"
        );
    }

    #[test]
    fn signature_similarity_edges() {
        assert_eq!(signature_similarity(&vec![], &vec![]), 1.0);
        let s = vec!["ing".to_string()];
        assert_eq!(signature_similarity(&s, &s), 1.0);
        let t = vec!["boe".to_string(), "ing".to_string()];
        // 1 agreement out of max(1, 2) = 2 positions... positions: s[0]=ing
        // vs t[0]=boe disagree; only overlap length compared => 0 agreements.
        assert_eq!(signature_similarity(&s, &t), 0.0);
    }
}
