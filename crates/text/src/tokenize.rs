//! Tokenization (paper §3, "Tokenization").
//!
//! `tok` splits a string into a **set** of tokens based on a set of delimiter
//! characters (whitespace by default), ignoring case. Duplicate tokens within
//! one attribute value collapse (the paper defines `tok(s)` as a set); copies
//! of the same token in *different* columns are kept apart by the column
//! property, which is handled one level up in `fm-core`.

/// Maximum bytes per token. Real attribute values tokenize far below this;
/// the cap bounds index key sizes against pathological kilobyte "tokens"
/// (unbroken junk strings), which are truncated at a character boundary.
pub const MAX_TOKEN_BYTES: usize = 200;

/// A configurable tokenizer.
///
/// The default configuration matches the paper: split on ASCII whitespace,
/// fold to lowercase, drop empty tokens, set semantics. Tokens are capped
/// at [`MAX_TOKEN_BYTES`].
#[derive(Debug, Clone)]
pub struct Tokenizer {
    delimiters: Vec<char>,
    /// When `false`, duplicate tokens within a single string are kept
    /// (multiset semantics). The paper uses set semantics; multiset is
    /// offered for experimentation.
    dedup: bool,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer {
            delimiters: Vec::new(), // empty == "any whitespace"
            dedup: true,
        }
    }
}

impl Tokenizer {
    /// Tokenizer splitting on ASCII whitespace with set semantics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add extra delimiter characters (e.g. `,`, `;`, `/`) on top of
    /// whitespace.
    pub fn with_delimiters(mut self, delimiters: &[char]) -> Self {
        self.delimiters = delimiters.to_vec();
        self
    }

    /// Keep duplicate tokens within one string (multiset semantics).
    pub fn keep_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    #[inline]
    fn is_delimiter(&self, c: char) -> bool {
        c.is_whitespace() || self.delimiters.contains(&c)
    }

    /// Tokenize `s`, appending lowercase tokens to `out`.
    ///
    /// Reuses `out`'s allocation; callers in hot loops should keep a
    /// workhorse vector around.
    pub fn tokenize_into(&self, s: &str, out: &mut Vec<String>) {
        let start = out.len();
        let mut current = String::new();
        for c in s.chars() {
            if self.is_delimiter(c) {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
            } else if current.len() < MAX_TOKEN_BYTES {
                current.extend(c.to_lowercase());
            }
        }
        if !current.is_empty() {
            out.push(current);
        }
        if self.dedup {
            // Set semantics while preserving first-occurrence order; token
            // counts per attribute value are tiny (typically < 10, paper §2),
            // so the quadratic scan beats hashing.
            let mut i = start;
            while i < out.len() {
                let dup = out[start..i].iter().any(|t| *t == out[i]);
                if dup {
                    out.remove(i);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Tokenize `s` into a fresh vector.
    pub fn tokenize(&self, s: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.tokenize_into(s, &mut out);
        out
    }
}

/// Tokenize with the default (paper) configuration.
///
/// ```
/// let toks = fm_text::tokenize("Boeing Company");
/// assert_eq!(toks, vec!["boeing", "company"]);
/// ```
pub fn tokenize(s: &str) -> Vec<String> {
    Tokenizer::new().tokenize(s)
}

/// Tokenize with the default configuration into a caller-provided buffer.
pub fn tokenize_into(s: &str, out: &mut Vec<String>) {
    Tokenizer::new().tokenize_into(s, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_whitespace_split() {
        assert_eq!(tokenize("Boeing Company"), vec!["boeing", "company"]);
    }

    #[test]
    fn case_folding() {
        assert_eq!(tokenize("SEATTLE"), vec!["seattle"]);
        assert_eq!(tokenize("SeAtTlE wa"), vec!["seattle", "wa"]);
    }

    #[test]
    fn collapses_runs_of_whitespace() {
        assert_eq!(tokenize("  a \t b \n c  "), vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_and_blank() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn set_semantics_within_a_string() {
        // Paper §3: tok(s) is a set.
        assert_eq!(tokenize("new new york"), vec!["new", "york"]);
        assert_eq!(tokenize("A a"), vec!["a"]);
    }

    #[test]
    fn multiset_option_keeps_duplicates() {
        let t = Tokenizer::new().keep_duplicates();
        assert_eq!(t.tokenize("new new york"), vec!["new", "new", "york"]);
    }

    #[test]
    fn extra_delimiters() {
        let t = Tokenizer::new().with_delimiters(&[',', '.']);
        assert_eq!(t.tokenize("Boeing, Co."), vec!["boeing", "co"]);
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("MÜNCHEN Straße"), vec!["münchen", "straße"]);
    }

    #[test]
    fn tokenize_into_reuses_buffer() {
        let mut buf = Vec::with_capacity(8);
        tokenize_into("boeing company", &mut buf);
        assert_eq!(buf.len(), 2);
        buf.clear();
        tokenize_into("bon corporation", &mut buf);
        assert_eq!(buf, vec!["bon", "corporation"]);
    }

    #[test]
    fn tokenize_into_appends_and_dedups_only_new_segment() {
        let mut buf = vec!["boeing".to_string()];
        tokenize_into("boeing boeing co", &mut buf);
        // Pre-existing contents are untouched; dedup applies to the new span.
        assert_eq!(buf, vec!["boeing", "boeing", "co"]);
    }

    #[test]
    fn digits_and_punctuation_are_token_chars_by_default() {
        assert_eq!(tokenize("98004 wa-98004"), vec!["98004", "wa-98004"]);
    }

    #[test]
    fn pathological_tokens_are_capped() {
        let junk = "x".repeat(5000);
        let toks = tokenize(&junk);
        assert_eq!(toks.len(), 1);
        assert!(
            toks[0].len() <= MAX_TOKEN_BYTES + 4,
            "len {}",
            toks[0].len()
        );
        // Multibyte characters stay intact at the cap.
        let junk = "ü".repeat(5000);
        let toks = tokenize(&junk);
        assert!(toks[0].len() <= MAX_TOKEN_BYTES + 4);
        assert!(toks[0].chars().all(|c| c == 'ü'));
        // The cap applies per token, not per string.
        let two = format!("{} {}", "a".repeat(300), "b".repeat(300));
        let toks = tokenize(&two);
        assert_eq!(toks.len(), 2);
        assert!(toks.iter().all(|t| t.len() <= MAX_TOKEN_BYTES + 4));
    }
}
