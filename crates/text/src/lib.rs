//! # fm-text — string kernels for fuzzy matching
//!
//! This crate implements the string-level building blocks of the fuzzy match
//! operation from *Chaudhuri, Ganjam, Ganti, Motwani, "Robust and Efficient
//! Fuzzy Match for Online Data Cleaning", SIGMOD 2003*:
//!
//! * [`mod@tokenize`] — delimiter-based, case-folding tokenization (paper §3);
//! * [`edit_distance`] — character edit distance normalized by the longer
//!   string (paper §3, "Edit Distance");
//! * [`qgram`] — q-gram sets of tokens (paper §4.1, "Q-gram Set");
//! * [`mod@jaccard`] — the Jaccard coefficient between sets (paper §4.1);
//! * [`minhash`] — min-hash signatures over q-gram sets (paper §4.1,
//!   "Min-hash Similarity");
//! * [`hash`] — the deterministic seeded hash functions everything above is
//!   built on.
//!
//! The crate is deliberately free of any relational or weighting concerns:
//! columns, IDF weights and the similarity functions live in `fm-core`.

#![forbid(unsafe_code)]

pub mod edit_distance;
pub mod hash;
pub mod jaccard;
pub mod minhash;
pub mod qgram;
pub mod tokenize;

pub use edit_distance::{levenshtein, normalized_edit_distance, EditBuffer};
pub use jaccard::jaccard;
pub use minhash::{MinHasher, Signature};
pub use qgram::{qgram_set, qgram_similarity_upper_bound};
pub use tokenize::{tokenize, tokenize_into, Tokenizer};
