//! Figure 9 — average number of tids processed per input tuple on D2.
//!
//! Paper observation to reproduce: the count *rises* with signature size
//! (more coordinates mean more tid-lists to score) even as candidate
//! fetches (Figure 8) fall — the extra scoring is "more than compensated"
//! by the smaller candidate sets.

use fm_bench::{
    default_strategies, make_dataset, run_strategy_with, write_csv, Opts, Table, Workbench,
};
use fm_core::{OscStopping, QueryMode};
use fm_datagen::{ErrorModel, D2_PROBS};

fn main() {
    let opts = Opts::from_args();
    let bench = Workbench::new(&opts);
    let dataset = make_dataset(
        &bench.reference,
        opts.inputs,
        &D2_PROBS,
        ErrorModel::TypeI,
        opts.seed + u64::from(b'2'),
    );
    let mut table = Table::new(
        "Figure 9 — tids processed per input tuple (D2)",
        &[
            "strategy",
            "avg tids processed",
            "avg ETI lookups",
            "avg ETI rows",
        ],
    );
    for strategy in default_strategies() {
        let row = run_strategy_with(
            &bench,
            &strategy,
            &dataset,
            QueryMode::Osc,
            OscStopping::PaperExample,
        );
        // All three counters come off the per-query LookupTrace; a probe
        // can touch several chunked ETI rows, never fewer than zero.
        eprintln!(
            "[fig9] {:>6}: {:.0} tids, {:.1} lookups, {:.1} ETI rows",
            row.strategy, row.avg_tids, row.avg_eti_lookups, row.avg_eti_rows
        );
        table.row(vec![
            row.strategy.clone(),
            format!("{:.0}", row.avg_tids),
            format!("{:.1}", row.avg_eti_lookups),
            format!("{:.1}", row.avg_eti_rows),
        ]);
    }
    write_csv(&table, &opts.out, "fig9_tids");
}
