//! `bench_load` — closed-loop load generator for `fuzzymatch serve`.
//!
//! N client threads each hold one connection and issue `--requests`
//! lookups back-to-back (closed loop: the next request leaves when the
//! previous response arrives, so offered load adapts to server
//! capacity). Reports achieved QPS plus p50/p95/p99 of the protocol's
//! per-request `latency_us` field — server-side receive→reply time, the
//! serving-layer analogue of the fig6/8/9 per-query counters.
//!
//! ```text
//! bench_load --addr 127.0.0.1:7407 --input "Beoing Company,Seattle,WA,98004" \
//!            [--clients 4] [--requests 200] [-k 1] [-c 0.0] [--deadline-ms 0]
//! ```
//!
//! The input is split on plain commas (empty field = NULL); the server
//! validates arity. Exit code is non-zero if any response was dropped
//! (request sent, no reply received outside a drain) — the invariant
//! the ISSUE's acceptance criteria gate on.

use std::process::ExitCode;
use std::time::Instant;

use fm_core::Record;
use fm_server::Client;

struct Flags {
    addr: String,
    input: String,
    clients: usize,
    requests: usize,
    k: usize,
    c: f64,
    deadline_ms: u64,
}

fn parse_flags() -> Result<Flags, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut flags = Flags {
        addr: String::new(),
        input: String::new(),
        clients: 4,
        requests: 200,
        k: 1,
        c: 0.0,
        deadline_ms: 0,
    };
    let mut i = 0;
    while i < argv.len() {
        let name = argv[i]
            .strip_prefix("--")
            .or_else(|| argv[i].strip_prefix('-'))
            .ok_or_else(|| format!("unexpected argument {}", argv[i]))?;
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for --{name}"))?;
        match name {
            "addr" => flags.addr = value.clone(),
            "input" => flags.input = value.clone(),
            "clients" => flags.clients = value.parse().map_err(|_| "bad --clients")?,
            "requests" => flags.requests = value.parse().map_err(|_| "bad --requests")?,
            "k" => flags.k = value.parse().map_err(|_| "bad -k")?,
            "c" => flags.c = value.parse().map_err(|_| "bad -c")?,
            "deadline-ms" => flags.deadline_ms = value.parse().map_err(|_| "bad --deadline-ms")?,
            other => return Err(format!("unknown flag --{other}")),
        }
        i += 2;
    }
    if flags.addr.is_empty() {
        return Err("--addr is required".into());
    }
    if flags.input.is_empty() {
        return Err("--input is required".into());
    }
    if flags.clients == 0 || flags.requests == 0 {
        return Err("--clients and --requests must be at least 1".into());
    }
    Ok(flags)
}

/// Per-thread outcome tally.
#[derive(Default)]
struct Tally {
    ok: u64,
    overloaded: u64,
    deadline: u64,
    other_errors: u64,
    /// Requests that got no response at all (the dropped-response count).
    dropped: u64,
    /// Server-side latency of every answered request, µs.
    latencies: Vec<u64>,
}

fn run_client(flags: &Flags, input: &Record) -> Result<Tally, String> {
    let mut client = Client::connect(&flags.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", flags.addr))?;
    let deadline = if flags.deadline_ms == 0 {
        None
    } else {
        Some(flags.deadline_ms)
    };
    let mut tally = Tally::default();
    for _ in 0..flags.requests {
        match client.lookup_with(input, flags.k, flags.c, deadline, 0) {
            Ok(reply) => {
                tally.latencies.push(reply.latency_us);
                if reply.ok {
                    tally.ok += 1;
                } else {
                    match reply.code {
                        503 => tally.overloaded += 1,
                        408 => tally.deadline += 1,
                        _ => tally.other_errors += 1,
                    }
                }
            }
            Err(_) => tally.dropped += 1,
        }
    }
    Ok(tally)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run() -> Result<bool, String> {
    let flags = parse_flags()?;
    let input = Record::from_options(
        flags
            .input
            .split(',')
            .map(|v| {
                if v.is_empty() {
                    None
                } else {
                    Some(v.to_string())
                }
            })
            .collect(),
    );

    let start = Instant::now();
    let tallies: Vec<Result<Tally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..flags.clients)
            .map(|_| scope.spawn(|| run_client(&flags, &input)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err("client thread panicked".to_string()),
            })
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();

    let mut total = Tally::default();
    for tally in tallies {
        let tally = tally?;
        total.ok += tally.ok;
        total.overloaded += tally.overloaded;
        total.deadline += tally.deadline;
        total.other_errors += tally.other_errors;
        total.dropped += tally.dropped;
        total.latencies.extend(tally.latencies);
    }
    total.latencies.sort_unstable();

    let answered = total.latencies.len() as u64;
    let sent = (flags.clients * flags.requests) as u64;
    let mean = if answered == 0 {
        0.0
    } else {
        total.latencies.iter().sum::<u64>() as f64 / answered as f64
    };
    println!(
        "bench_load: {} clients x {} requests against {}",
        flags.clients, flags.requests, flags.addr
    );
    println!(
        "  wall time: {wall:.2}s, achieved QPS: {:.1}",
        answered as f64 / wall.max(1e-9)
    );
    println!(
        "  responses: {} ok, {} overloaded, {} deadline, {} other ({} sent)",
        total.ok, total.overloaded, total.deadline, total.other_errors, sent
    );
    println!(
        "  latency (server-side us): p50={} p95={} p99={} mean={mean:.1}",
        quantile(&total.latencies, 0.50),
        quantile(&total.latencies, 0.95),
        quantile(&total.latencies, 0.99)
    );
    println!("  dropped responses: {}", total.dropped);
    Ok(total.dropped == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_load: {msg}");
            ExitCode::FAILURE
        }
    }
}
