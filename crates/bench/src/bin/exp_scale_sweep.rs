//! Extension experiment: how the normalized elapsed time scales with |R|.
//!
//! EXPERIMENTS.md argues that our Figure-6 numbers exceed the paper's
//! (< 2.5 at 1.7 M tuples) because the normalization unit — one naive
//! full-scan lookup — grows linearly with |R| while the indexed lookup
//! cost grows far slower. This experiment measures exactly that: the same
//! workload at increasing reference sizes, reporting the naive unit, the
//! per-input indexed latency, and their ratio. Extrapolating the trend to
//! 1.7 M reproduces the paper's magnitude.

use std::time::Instant;

use fm_bench::{make_dataset, naive_single_lookup_time, write_csv, Opts, Table};
use fm_core::naive::NaiveMatcher;
use fm_core::{Config, FuzzyMatcher, OscStopping, Record};
use fm_datagen::{generate_customers, ErrorModel, GeneratorConfig, CUSTOMER_COLUMNS, D2_PROBS};
use fm_store::Database;

fn main() {
    let mut opts = Opts::from_args();
    if opts.inputs == Opts::default().inputs {
        opts.inputs = 300;
    }
    let sizes = [10_000usize, 30_000, 100_000, 300_000];
    let mut table = Table::new(
        "Normalized time vs reference size (Q+T_3, D2 errors, paper-example OSC)",
        &[
            "|R|",
            "naive unit (ms)",
            "indexed per input (µs)",
            "normalized (batch/unit)",
            "accuracy",
        ],
    );
    for &size in &sizes {
        let reference = generate_customers(&GeneratorConfig::new(size, opts.seed));
        let db = Database::in_memory().expect("db");
        let config = Config::default()
            .with_columns(&CUSTOMER_COLUMNS)
            .with_seed(opts.seed)
            .with_osc_stopping(OscStopping::PaperExample);
        let matcher =
            FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), config).expect("build");
        let dataset = make_dataset(
            &reference,
            opts.inputs,
            &D2_PROBS,
            ErrorModel::TypeI,
            opts.seed + 1,
        );

        let tuples: Vec<(u32, Record)> = reference
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, r)| (i as u32 + 1, r))
            .collect();
        let naive = NaiveMatcher::from_records(
            &tuples,
            Config::default()
                .with_columns(&CUSTOMER_COLUMNS)
                .with_seed(opts.seed),
        );
        let unit = naive_single_lookup_time(&naive, &dataset, opts.naive_samples);

        let start = Instant::now();
        let mut correct = 0usize;
        for (i, input) in dataset.inputs.iter().enumerate() {
            let result = matcher.lookup(input, 1, 0.0).expect("lookup");
            if let Some(m) = result.matches.first() {
                let t = dataset.targets[i];
                if m.tid as usize == t + 1 || m.record.values() == reference[t].values() {
                    correct += 1;
                }
            }
        }
        let batch = start.elapsed();
        let per_input_us = batch.as_secs_f64() * 1e6 / dataset.inputs.len() as f64;
        // Normalized as if the batch had the paper's 1655 inputs.
        let normalized = per_input_us * 1655.0 / (unit.as_secs_f64() * 1e6);
        eprintln!(
            "[scale] |R|={size}: unit {:.1} ms, {per_input_us:.0} µs/input, normalized {normalized:.2}",
            unit.as_secs_f64() * 1e3,
        );
        table.row(vec![
            size.to_string(),
            format!("{:.1}", unit.as_secs_f64() * 1e3),
            format!("{per_input_us:.0}"),
            format!("{normalized:.2}"),
            format!(
                "{:.1}%",
                correct as f64 / dataset.inputs.len() as f64 * 100.0
            ),
        ]);
    }
    write_csv(&table, &opts.out, "scale_sweep");
    println!(
        "(normalized column assumes the paper's 1655-input batch; the paper \
         reports < 2.5 at |R| = 1.7M)"
    );
}
