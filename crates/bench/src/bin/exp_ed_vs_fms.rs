//! §6.2.1.1 — quality of `ed` vs `fms` (the paper's first results table).
//!
//! Paper setup: ~100 input tuples per dataset, column error probabilities
//! [0.90, 0.5, 0.5, 0.6], one dataset under Type I and one under Type II
//! error injection, matching done with the **naive** algorithm so only the
//! similarity functions are compared.
//!
//! Paper result: fms 69% vs ed 63% on Type I; fms 95% vs ed 71% on Type II
//! (Type II is biased toward fms: errors land on low-weight tokens).

use fm_bench::{
    ed_accuracy, make_dataset, naive_accuracy, reference_records, write_csv, Opts, Table,
};
use fm_core::naive::{EditDistanceMatcher, NaiveMatcher};
use fm_core::{Config, Record};
use fm_datagen::{ErrorModel, CUSTOMER_COLUMNS, ED_VS_FMS_PROBS};

fn main() {
    let mut opts = Opts::from_args();
    // The paper uses ~100 inputs for this experiment; only override the
    // default batch size, never an explicit flag.
    if opts.inputs == Opts::default().inputs {
        opts.inputs = 100;
    }
    let reference = reference_records(&opts);
    let tuples: Vec<(u32, Record)> = reference
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, r)| (i as u32 + 1, r))
        .collect();
    let config = Config::default().with_columns(&CUSTOMER_COLUMNS);
    eprintln!(
        "[ed-vs-fms] reference = {} tuples, {} inputs per dataset",
        reference.len(),
        opts.inputs
    );
    let fms = NaiveMatcher::from_records(&tuples, config);
    let ed = EditDistanceMatcher::from_records(&tuples);

    let mut table = Table::new(
        "§6.2.1.1 — accuracy of fms vs ed (naive matching)",
        &["dataset", "fms", "ed", "paper fms", "paper ed"],
    );
    for (label, model, paper_fms, paper_ed) in [
        ("Type I", ErrorModel::TypeI, "69%", "63%"),
        ("Type II", ErrorModel::TypeII, "95%", "71%"),
    ] {
        let dataset = make_dataset(&reference, opts.inputs, &ED_VS_FMS_PROBS, model, opts.seed);
        let acc_fms = naive_accuracy(&fms, &reference, &dataset);
        let acc_ed = ed_accuracy(&ed, &reference, &dataset);
        eprintln!("[ed-vs-fms] {label}: fms {acc_fms:.3}, ed {acc_ed:.3}");
        table.row(vec![
            label.to_string(),
            format!("{:.1}%", acc_fms * 100.0),
            format!("{:.1}%", acc_ed * 100.0),
            paper_fms.to_string(),
            paper_ed.to_string(),
        ]);
    }
    write_csv(&table, &opts.out, "ed_vs_fms");
}
