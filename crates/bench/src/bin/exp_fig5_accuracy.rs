//! Figure 5 — accuracy of the signature strategies on D1, D2, D3.
//!
//! Paper observations this should reproduce: (i) min-hash signatures beat
//! the tokens-only index (`Q_H`/`Q+T_H` with H > 0 above `Q+T_0` by 5–25%);
//! (ii) adding tokens to the signature does not hurt accuracy
//! (`Q+T_H` ≈ `Q_H`); (iii) gains flatten after H = 2.

use fm_bench::{default_strategies, make_dataset, run_strategy, write_csv, Opts, Table, Workbench};
use fm_core::QueryMode;
use fm_datagen::{ErrorModel, D1_PROBS, D2_PROBS, D3_PROBS};

fn main() {
    let opts = Opts::from_args();
    let bench = Workbench::new(&opts);
    let datasets: Vec<(&str, _)> = [("D1", D1_PROBS), ("D2", D2_PROBS), ("D3", D3_PROBS)]
        .into_iter()
        .map(|(label, probs)| {
            (
                label,
                make_dataset(
                    &bench.reference,
                    opts.inputs,
                    &probs,
                    ErrorModel::TypeI,
                    opts.seed + label.as_bytes()[1] as u64,
                ),
            )
        })
        .collect();

    let mut table = Table::new(
        "Figure 5 — accuracy on D1, D2, D3 (Type I, K=1, q=4, c=0)",
        &["strategy", "D1", "D2", "D3"],
    );
    for strategy in default_strategies() {
        let mut cells = vec![strategy.label()];
        for (label, dataset) in &datasets {
            let row = run_strategy(&bench, &strategy, dataset, QueryMode::Osc);
            eprintln!(
                "[fig5] {label} {:>6}: {:.1}%",
                row.strategy,
                row.accuracy * 100.0
            );
            cells.push(format!("{:.1}%", row.accuracy * 100.0));
        }
        table.row(cells);
    }
    write_csv(&table, &opts.out, "fig5_accuracy");
}
