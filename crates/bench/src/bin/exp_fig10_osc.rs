//! Figure 10 — fraction of input tuples answered by a successful optimistic
//! short circuit on D2.
//!
//! Paper observation to reproduce: OSC succeeds for 50–75% of inputs and
//! the success fraction grows with signature size (more q-grams separate
//! the top candidate from the rest earlier).

use fm_bench::{
    default_strategies, make_dataset, run_strategy_with, write_csv, Opts, Table, Workbench,
};
use fm_core::{OscStopping, QueryMode};
use fm_datagen::{ErrorModel, D2_PROBS};

fn main() {
    let opts = Opts::from_args();
    let bench = Workbench::new(&opts);
    let dataset = make_dataset(
        &bench.reference,
        opts.inputs,
        &D2_PROBS,
        ErrorModel::TypeI,
        opts.seed + u64::from(b'2'),
    );
    let mut table = Table::new(
        "Figure 10 — OSC success and failure fractions (D2)",
        &["strategy", "success fraction", "failure fraction"],
    );
    for strategy in default_strategies() {
        let row = run_strategy_with(
            &bench,
            &strategy,
            &dataset,
            QueryMode::Osc,
            OscStopping::PaperExample,
        );
        eprintln!(
            "[fig10] {:>6}: {:.2} success",
            row.strategy, row.osc_success_fraction
        );
        table.row(vec![
            row.strategy.clone(),
            format!("{:.2}", row.osc_success_fraction),
            format!("{:.2}", 1.0 - row.osc_success_fraction),
        ]);
    }
    write_csv(&table, &opts.out, "fig10_osc");
}
