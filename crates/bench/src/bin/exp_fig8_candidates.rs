//! Figure 8 — average number of reference tuples fetched per input tuple
//! (the candidate set actually verified with `fms`), split by OSC outcome.
//!
//! Paper observations to reproduce: fetches shrink as the signature grows
//! (more q-grams separate the scores better), and when OSC succeeds the
//! algorithm fetches ≈1 tuple per input.

use fm_bench::{
    default_strategies, make_dataset, run_strategy_with, write_csv, Opts, Table, Workbench,
};
use fm_core::{OscStopping, QueryMode};
use fm_datagen::{ErrorModel, D2_PROBS};

fn main() {
    let opts = Opts::from_args();
    let bench = Workbench::new(&opts);
    let dataset = make_dataset(
        &bench.reference,
        opts.inputs,
        &D2_PROBS,
        ErrorModel::TypeI,
        opts.seed + u64::from(b'2'),
    );
    let mut table = Table::new(
        "Figure 8 — reference tuples fetched per input tuple (D2)",
        &[
            "strategy",
            "avg fetches",
            "OSC success",
            "OSC failure",
            "fms evals",
            "apx pruned",
        ],
    );
    for strategy in default_strategies() {
        let row = run_strategy_with(
            &bench,
            &strategy,
            &dataset,
            QueryMode::Osc,
            OscStopping::PaperExample,
        );
        // The fetch counts come off the per-query LookupTrace; every fetch
        // is verified with one exact fms, so the two columns must agree.
        assert!(
            (row.avg_fetches - row.avg_fms_evals).abs() < 1e-9,
            "fetches {} != fms evals {}",
            row.avg_fetches,
            row.avg_fms_evals
        );
        eprintln!(
            "[fig8] {:>6}: {:.2} fetches ({:.2} on success / {:.2} on failure), {:.2} apx-pruned",
            row.strategy,
            row.avg_fetches,
            row.avg_fetches_osc_success,
            row.avg_fetches_osc_failure,
            row.avg_apx_pruned,
        );
        table.row(vec![
            row.strategy.clone(),
            format!("{:.2}", row.avg_fetches),
            format!("{:.2}", row.avg_fetches_osc_success),
            format!("{:.2}", row.avg_fetches_osc_failure),
            format!("{:.2}", row.avg_fms_evals),
            format!("{:.2}", row.avg_apx_pruned),
        ]);
    }
    write_csv(&table, &opts.out, "fig8_candidates");
}
