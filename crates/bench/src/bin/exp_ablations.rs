//! Ablations of the design choices DESIGN.md §10 calls out:
//!
//! 1. query algorithm: basic vs OSC(sound) vs OSC(paper-example) —
//!    accuracy / fetches / short-circuit rate (the trade-off behind the
//!    paper's §4.3.2 and our `OscStopping` knob);
//! 2. candidate cap sweep (`max_candidates`);
//! 3. stop q-gram threshold sweep;
//! 4. `c_ins` (token insertion factor) sweep;
//! 5. token transposition operation on/off, on a transposition-heavy
//!    error mix (§5.3);
//! 6. column weights on/off with a deliberately noisy column (§5.2).

use fm_bench::{make_dataset, write_csv, Opts, Table};
use fm_core::{Config, FuzzyMatcher, OscStopping, QueryMode, Record, TranspositionCost};
use fm_datagen::{generate_customers, GeneratorConfig, CUSTOMER_COLUMNS, D2_PROBS};
use fm_datagen::{ErrorModel, InputDataset};
use fm_store::Database;

struct Ctx {
    reference: Vec<Record>,
    dataset: InputDataset,
    opts: Opts,
}

fn accuracy_and_stats(matcher: &FuzzyMatcher, ctx: &Ctx, mode: QueryMode) -> (f64, f64, f64) {
    let mut correct = 0usize;
    let mut fetches = 0u64;
    let mut successes = 0usize;
    for (i, input) in ctx.dataset.inputs.iter().enumerate() {
        let result = matcher.lookup_with(input, 1, 0.0, mode).expect("lookup");
        let m = result.matches.first();
        if fm_bench::answer_correct(
            &ctx.reference,
            ctx.dataset.targets[i],
            m.map(|m| m.tid),
            m.map(|m| &m.record),
        ) {
            correct += 1;
        }
        fetches += result.stats.candidates_fetched;
        successes += usize::from(result.stats.osc_succeeded);
    }
    let n = ctx.dataset.inputs.len() as f64;
    (correct as f64 / n, fetches as f64 / n, successes as f64 / n)
}

fn base_config(opts: &Opts) -> Config {
    Config::default()
        .with_columns(&CUSTOMER_COLUMNS)
        .with_seed(opts.seed)
}

fn build(db: &Database, prefix: &str, ctx: &Ctx, config: Config) -> FuzzyMatcher {
    FuzzyMatcher::build(db, prefix, ctx.reference.iter().cloned(), config).expect("build")
}

fn main() {
    let mut opts = Opts::from_args();
    if opts.ref_size == Opts::default().ref_size {
        opts.ref_size = 20_000; // ablations sweep many configs; keep each cheap
    }
    if opts.inputs == Opts::default().inputs {
        opts.inputs = 400;
    }
    let reference = generate_customers(&GeneratorConfig::new(opts.ref_size, opts.seed));
    let dataset = make_dataset(
        &reference,
        opts.inputs,
        &D2_PROBS,
        ErrorModel::TypeI,
        opts.seed + 50,
    );
    let ctx = Ctx {
        reference,
        dataset,
        opts: opts.clone(),
    };
    let db = Database::in_memory().expect("db");

    // 1. Query algorithm / OSC stopping flavor.
    let mut t1 = Table::new(
        "Ablation 1 — query algorithm (D2-style errors)",
        &["algorithm", "accuracy", "avg fetches", "OSC success"],
    );
    let sound = build(&db, "a1s", &ctx, base_config(&opts));
    let paper = build(
        &db,
        "a1p",
        &ctx,
        base_config(&opts).with_osc_stopping(OscStopping::PaperExample),
    );
    for (name, matcher, mode) in [
        ("basic", &sound, QueryMode::Basic),
        ("osc (sound bound)", &sound, QueryMode::Osc),
        ("osc (paper-example bound)", &paper, QueryMode::Osc),
    ] {
        let (acc, fetches, succ) = accuracy_and_stats(matcher, &ctx, mode);
        t1.row(vec![
            name.to_string(),
            format!("{:.1}%", acc * 100.0),
            format!("{fetches:.1}"),
            format!("{succ:.2}"),
        ]);
    }
    write_csv(&t1, &opts.out, "ablation1_algorithm");

    // 2. Candidate cap sweep.
    let mut t2 = Table::new(
        "Ablation 2 — verification cap (max_candidates)",
        &["cap", "accuracy", "avg fetches"],
    );
    for cap in [4usize, 16, 64, 256, 0] {
        let m = build(
            &db,
            &format!("a2_{cap}"),
            &ctx,
            base_config(&opts).with_max_candidates(cap),
        );
        let (acc, fetches, _) = accuracy_and_stats(&m, &ctx, QueryMode::Osc);
        t2.row(vec![
            if cap == 0 {
                "unlimited".into()
            } else {
                cap.to_string()
            },
            format!("{:.1}%", acc * 100.0),
            format!("{fetches:.1}"),
        ]);
    }
    write_csv(&t2, &opts.out, "ablation2_candidate_cap");

    // 3. Stop q-gram threshold sweep.
    let mut t3 = Table::new(
        "Ablation 3 — stop q-gram threshold",
        &["threshold", "accuracy", "eti entries"],
    );
    for threshold in [50usize, 500, 10_000, usize::MAX / 2] {
        let m = build(
            &db,
            &format!("a3_{threshold}"),
            &ctx,
            base_config(&opts).with_stop_threshold(threshold),
        );
        let (acc, _, _) = accuracy_and_stats(&m, &ctx, QueryMode::Osc);
        t3.row(vec![
            if threshold > 1_000_000 {
                "disabled".into()
            } else {
                threshold.to_string()
            },
            format!("{:.1}%", acc * 100.0),
            m.eti_entry_count().expect("count").to_string(),
        ]);
    }
    write_csv(&t3, &opts.out, "ablation3_stop_threshold");

    // 4. cins sweep.
    let mut t4 = Table::new(
        "Ablation 4 — token insertion factor c_ins",
        &["cins", "accuracy"],
    );
    for cins in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let m = build(
            &db,
            &format!("a4_{}", (cins * 100.0) as u32),
            &ctx,
            base_config(&opts).with_cins(cins),
        );
        let (acc, _, _) = accuracy_and_stats(&m, &ctx, QueryMode::Osc);
        t4.row(vec![format!("{cins:.2}"), format!("{:.1}%", acc * 100.0)]);
    }
    write_csv(&t4, &opts.out, "ablation4_cins");

    // 5. Transposition op on a transposition-heavy error mix: corrupt only
    //    by swapping adjacent name tokens, then compare.
    let mut swapped_inputs = Vec::new();
    let mut swapped_targets = Vec::new();
    for (i, r) in ctx.reference.iter().enumerate().take(opts.inputs) {
        let name = r.get(0).unwrap();
        let mut tokens: Vec<&str> = name.split(' ').collect();
        if tokens.len() >= 2 {
            tokens.swap(0, 1);
            swapped_inputs.push(Record::new(&[
                &tokens.join(" "),
                r.get(1).unwrap_or(""),
                r.get(2).unwrap_or(""),
                r.get(3).unwrap_or(""),
            ]));
            swapped_targets.push(i);
        }
    }
    let mut t5 = Table::new(
        "Ablation 5 — token transposition op (§5.3) on swapped-token inputs",
        &["transposition", "accuracy", "mean fms(target)"],
    );
    for (name, config) in [
        ("off", base_config(&opts)),
        (
            "constant 0.25",
            base_config(&opts).with_transposition(TranspositionCost::Constant(0.25)),
        ),
        (
            "average",
            base_config(&opts).with_transposition(TranspositionCost::Average),
        ),
        (
            "min",
            base_config(&opts).with_transposition(TranspositionCost::Min),
        ),
    ] {
        let m = build(
            &db,
            &format!("a5_{}", name.replace([' ', '.'], "_")),
            &ctx,
            config,
        );
        let mut correct = 0usize;
        let mut fms_sum = 0.0;
        for (input, &target) in swapped_inputs.iter().zip(&swapped_targets) {
            let result = m.lookup(input, 1, 0.0).expect("lookup");
            if let Some(top) = result.matches.first() {
                if fm_bench::answer_correct(
                    &ctx.reference,
                    target,
                    Some(top.tid),
                    Some(&top.record),
                ) {
                    correct += 1;
                }
            }
            fms_sum += m.fms(input, &ctx.reference[target]);
        }
        let n = swapped_inputs.len() as f64;
        t5.row(vec![
            name.to_string(),
            format!("{:.1}%", correct as f64 / n * 100.0),
            format!("{:.3}", fms_sum / n),
        ]);
    }
    write_csv(&t5, &opts.out, "ablation5_transposition");

    // 6. Column weights with a noisy column: zero out the zip column's
    //    information by corrupting it always, then see whether down-weighting
    //    it helps.
    let noisy = make_dataset(
        &ctx.reference,
        opts.inputs,
        &[0.5, 0.3, 0.3, 1.0], // zip always corrupted
        ErrorModel::TypeI,
        opts.seed + 60,
    );
    let noisy_ctx = Ctx {
        reference: ctx.reference.clone(),
        dataset: noisy,
        opts: opts.clone(),
    };
    let mut t6 = Table::new(
        "Ablation 6 — column weights (§5.2) when one column is pure noise",
        &["column weights [name,city,state,zip]", "accuracy"],
    );
    for (name, config) in [
        ("uniform", base_config(&opts)),
        (
            "[2.0, 1.0, 1.0, 0.25]",
            base_config(&opts).with_column_weights(&[2.0, 1.0, 1.0, 0.25]),
        ),
    ] {
        let m = build(&db, &format!("a6_{}", name.len()), &noisy_ctx, config);
        let (acc, _, _) = accuracy_and_stats(&m, &noisy_ctx, QueryMode::Osc);
        t6.row(vec![name.to_string(), format!("{:.1}%", acc * 100.0)]);
    }
    write_csv(&t6, &opts.out, "ablation6_column_weights");

    let _ = ctx.opts;
}
