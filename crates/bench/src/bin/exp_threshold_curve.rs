//! Extension experiment: the operating curve of Figure 1's router.
//!
//! The paper's pipeline loads an input when its best fuzzy match clears the
//! minimum similarity threshold `c` and routes it to review otherwise, but
//! never evaluates how to *choose* `c`. This experiment does: a mixed
//! stream of corrupted known customers and genuinely new entities is
//! matched at a sweep of thresholds, reporting
//!
//! * true accepts — known inputs matched to their correct tuple at ≥ c;
//! * wrong accepts — known inputs matched to the *wrong* tuple at ≥ c
//!   (silent corruption, the worst outcome);
//! * false accepts — brand-new entities absorbed into an existing tuple;
//! * review load — everything routed to manual cleaning.
//!
//! Also reports recall@K (is the correct tuple among the top K?) since the
//! paper's K-match extension exists precisely to feed a human chooser.

use fm_bench::{make_dataset, write_csv, Opts, Table};
use fm_core::{FuzzyMatcher, Record};
use fm_datagen::{generate_customers, ErrorModel, GeneratorConfig, CUSTOMER_COLUMNS, D3_PROBS};
use fm_store::Database;

fn main() {
    let mut opts = Opts::from_args();
    if opts.ref_size == Opts::default().ref_size {
        opts.ref_size = 20_000;
    }
    if opts.inputs == Opts::default().inputs {
        opts.inputs = 500;
    }
    let reference = generate_customers(&GeneratorConfig::new(opts.ref_size, opts.seed));
    let db = Database::in_memory().expect("db");
    let config = fm_core::Config::default()
        .with_columns(&CUSTOMER_COLUMNS)
        .with_seed(opts.seed);
    let matcher =
        FuzzyMatcher::build(&db, "cust", reference.iter().cloned(), config).expect("build");

    // Known-but-dirty inputs and genuinely new entities.
    let known = make_dataset(
        &reference,
        opts.inputs,
        &D3_PROBS,
        ErrorModel::TypeI,
        opts.seed + 9,
    );
    let new_entities: Vec<Record> =
        generate_customers(&GeneratorConfig::new(opts.inputs, opts.seed ^ 0xDEAD_0001));

    // One K=1 lookup per input at c = 0; thresholds applied afterwards.
    let known_best: Vec<Option<(bool, f64)>> = known
        .inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let result = matcher.lookup(input, 1, 0.0).expect("lookup");
            result.matches.first().map(|m| {
                let t = known.targets[i];
                let correct = m.tid as usize == t + 1 || m.record.values() == reference[t].values();
                (correct, m.similarity)
            })
        })
        .collect();
    let new_best: Vec<Option<f64>> = new_entities
        .iter()
        .map(|input| {
            // A "new" entity could coincide with an existing tuple (the
            // generator can repeat); treat content-equal as known.
            let result = matcher.lookup(input, 1, 0.0).expect("lookup");
            result.matches.first().and_then(|m| {
                if m.record.values() == input.values() {
                    None // exact duplicate of a reference tuple: not "new"
                } else {
                    Some(m.similarity)
                }
            })
        })
        .collect();
    let n_known = known.inputs.len() as f64;
    let n_new = new_best.iter().filter(|b| b.is_some()).count() as f64;

    let mut curve = Table::new(
        "Load-threshold operating curve (known dirty inputs vs new entities)",
        &[
            "c",
            "true accept",
            "wrong accept",
            "known to review",
            "false accept (new)",
        ],
    );
    for c10 in 5..=19 {
        let c = c10 as f64 * 0.05;
        let mut true_accept = 0usize;
        let mut wrong_accept = 0usize;
        for best in &known_best {
            match best {
                Some((correct, sim)) if *sim >= c => {
                    if *correct {
                        true_accept += 1;
                    } else {
                        wrong_accept += 1;
                    }
                }
                _ => {}
            }
        }
        let false_accept = new_best
            .iter()
            .filter(|b| matches!(b, Some(sim) if *sim >= c))
            .count();
        curve.row(vec![
            format!("{c:.2}"),
            format!("{:.1}%", true_accept as f64 / n_known * 100.0),
            format!("{:.1}%", wrong_accept as f64 / n_known * 100.0),
            format!(
                "{:.1}%",
                (n_known - true_accept as f64 - wrong_accept as f64) / n_known * 100.0
            ),
            format!("{:.1}%", false_accept as f64 / n_new.max(1.0) * 100.0),
        ]);
    }
    write_csv(&curve, &opts.out, "threshold_curve");

    // Recall@K on the known inputs.
    let mut recall = Table::new("Recall@K on known dirty inputs (c = 0)", &["K", "recall"]);
    for k in [1usize, 2, 3, 5, 10] {
        let mut hit = 0usize;
        for (i, input) in known.inputs.iter().enumerate() {
            let result = matcher.lookup(input, k, 0.0).expect("lookup");
            let t = known.targets[i];
            if result
                .matches
                .iter()
                .any(|m| m.tid as usize == t + 1 || m.record.values() == reference[t].values())
            {
                hit += 1;
            }
        }
        recall.row(vec![
            k.to_string(),
            format!("{:.1}%", hit as f64 / n_known * 100.0),
        ]);
    }
    write_csv(&recall, &opts.out, "recall_at_k");
}
