//! Figure 6 — normalized elapsed time: time to fuzzy-match the whole input
//! batch divided by the time of ONE naive full-scan lookup.
//!
//! Paper observations to reproduce: (i) 2–3 orders of magnitude faster than
//! naive (the batch finishes before the naive algorithm has processed a few
//! tuples); (ii) time decreases as the signature grows; (iii) `Q+T_H` is
//! significantly faster than `Q_H`.

use fm_bench::{run_full_suite_with, write_csv, Opts, Table};
use fm_core::{OscStopping, QueryMode};

fn main() {
    let opts = Opts::from_args();
    let suite = run_full_suite_with(&opts, QueryMode::Osc, OscStopping::PaperExample);
    let mut table = Table::new(
        "Figure 6 — normalized elapsed times for the whole input batch",
        &["strategy", "D1", "D2", "D3", "D2 batch (s)"],
    );
    let strategies: Vec<String> = suite.datasets[0]
        .1
        .iter()
        .map(|r| r.strategy.clone())
        .collect();
    for (i, label) in strategies.iter().enumerate() {
        table.row(vec![
            label.clone(),
            format!("{:.2}", suite.datasets[0].1[i].normalized_time),
            format!("{:.2}", suite.datasets[1].1[i].normalized_time),
            format!("{:.2}", suite.datasets[2].1[i].normalized_time),
            format!("{:.2}", suite.datasets[1].1[i].batch_time.as_secs_f64()),
        ]);
    }
    write_csv(&table, &opts.out, "fig6_time");
    println!(
        "naive single-lookup unit: {:.1} ms",
        suite.naive_unit.as_secs_f64() * 1e3
    );
}
