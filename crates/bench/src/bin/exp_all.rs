//! Run the paper's complete §6 evaluation in one process: the §6.2.1.1
//! ed-vs-fms table plus Figures 5–10, sharing one reference relation and
//! one matcher build per strategy. Writes all CSVs under `--out`.

use fm_bench::{run_full_suite_with, write_csv, Opts, Table};
use fm_core::{OscStopping, QueryMode};

fn main() {
    let opts = Opts::from_args();
    eprintln!(
        "[exp_all] ref-size={} inputs={} seed={}",
        opts.ref_size, opts.inputs, opts.seed
    );
    // Accuracy figures use the library default (sound OSC bound); the
    // efficiency figures use the paper's own OSC behavior. EXPERIMENTS.md
    // discusses the trade-off; exp_ablations quantifies it.
    eprintln!("[exp_all] pass 1/2: sound OSC bound (Figure 5)");
    let suite = run_full_suite_with(&opts, QueryMode::Osc, OscStopping::Sound);
    eprintln!("[exp_all] pass 2/2: paper-example OSC bound (Figures 6-10)");
    let paper_suite = run_full_suite_with(&opts, QueryMode::Osc, OscStopping::PaperExample);

    // Figure 5: accuracy.
    let mut fig5 = Table::new(
        "Figure 5 — accuracy on D1, D2, D3 (Type I errors, K=1, q=4, c=0)",
        &["strategy", "D1", "D2", "D3"],
    );
    let strategies: Vec<String> = suite.datasets[0]
        .1
        .iter()
        .map(|r| r.strategy.clone())
        .collect();
    for (i, label) in strategies.iter().enumerate() {
        fig5.row(vec![
            label.clone(),
            format!("{:.1}%", suite.datasets[0].1[i].accuracy * 100.0),
            format!("{:.1}%", suite.datasets[1].1[i].accuracy * 100.0),
            format!("{:.1}%", suite.datasets[2].1[i].accuracy * 100.0),
        ]);
    }
    write_csv(&fig5, &opts.out, "fig5_accuracy");

    let suite = paper_suite; // Figures 6-10 report the paper-faithful runs
                             // Figure 6: normalized elapsed times.
    let mut fig6 = Table::new(
        "Figure 6 — normalized elapsed time for the input batch (batch / one naive lookup)",
        &["strategy", "D1", "D2", "D3"],
    );
    for (i, label) in strategies.iter().enumerate() {
        fig6.row(vec![
            label.clone(),
            format!("{:.2}", suite.datasets[0].1[i].normalized_time),
            format!("{:.2}", suite.datasets[1].1[i].normalized_time),
            format!("{:.2}", suite.datasets[2].1[i].normalized_time),
        ]);
    }
    write_csv(&fig6, &opts.out, "fig6_time");

    // Figure 7: normalized ETI build time (per strategy; dataset-independent).
    let mut fig7 = Table::new(
        "Figure 7 — normalized ETI build time (build / one naive lookup)",
        &["strategy", "normalized build", "build seconds"],
    );
    for row in &suite.datasets[1].1 {
        fig7.row(vec![
            row.strategy.clone(),
            format!("{:.2}", row.normalized_build),
            format!("{:.2}", row.build_time.as_secs_f64()),
        ]);
    }
    write_csv(&fig7, &opts.out, "fig7_eti_build");

    // Figure 8: candidate fetches per input (D2), split by OSC outcome.
    let mut fig8 = Table::new(
        "Figure 8 — reference tuples fetched per input tuple (D2)",
        &["strategy", "avg fetches", "OSC success", "OSC failure"],
    );
    for row in &suite.datasets[1].1 {
        fig8.row(vec![
            row.strategy.clone(),
            format!("{:.2}", row.avg_fetches),
            format!("{:.2}", row.avg_fetches_osc_success),
            format!("{:.2}", row.avg_fetches_osc_failure),
        ]);
    }
    write_csv(&fig8, &opts.out, "fig8_candidates");

    // Figure 9: tids processed per input (D2).
    let mut fig9 = Table::new(
        "Figure 9 — tids processed per input tuple (D2)",
        &["strategy", "avg tids", "avg ETI lookups"],
    );
    for row in &suite.datasets[1].1 {
        fig9.row(vec![
            row.strategy.clone(),
            format!("{:.0}", row.avg_tids),
            format!("{:.1}", row.avg_eti_lookups),
        ]);
    }
    write_csv(&fig9, &opts.out, "fig9_tids");

    // Figure 10: OSC success fractions (D2).
    let mut fig10 = Table::new(
        "Figure 10 — OSC success and failure fractions (D2)",
        &["strategy", "success", "failure"],
    );
    for row in &suite.datasets[1].1 {
        fig10.row(vec![
            row.strategy.clone(),
            format!("{:.2}", row.osc_success_fraction),
            format!("{:.2}", 1.0 - row.osc_success_fraction),
        ]);
    }
    write_csv(&fig10, &opts.out, "fig10_osc");

    println!(
        "naive single-lookup unit: {:.1} ms over {} reference tuples",
        suite.naive_unit.as_secs_f64() * 1e3,
        opts.ref_size
    );
}
