//! CI bench gate: a small deterministic fig6/fig8/fig9 micro-harness.
//!
//! Runs three representative strategies over one Type-I dataset and writes
//! a machine-readable JSON report with per-strategy counters, batch
//! timings, per-phase span totals from the flight recorder, the tracing
//! overhead of `lookup_batch` (enabled vs runtime-disabled), and a
//! replica-scaling measurement (the same matcher + store served with 1
//! vs 4 worker/replica pairs under 4 closed-loop clients), and a
//! telemetry-overhead measurement (the served workload with the sampler
//! at aggressive 25 ms windows vs sampler-off). `cargo xtask
//! bench` runs this binary (plus a `--no-default-features` build for the
//! compiled-out baseline) and fails on >20% regressions of the
//! deterministic counters against the committed `BENCH_baseline.json`.
//!
//! Counters are exactly reproducible given `--seed`; wall-clock numbers
//! are environment-dependent and only warned about by the gate.

use std::fmt::Write as _;
use std::time::Instant;

use fm_bench::{make_dataset, run_strategy, Strategy, Workbench};
use fm_core::{QueryMode, SignatureScheme};
use fm_datagen::ErrorModel;

struct GateOpts {
    quick: bool,
    out: String,
    reps: usize,
    seed: u64,
}

fn parse_args() -> GateOpts {
    let mut opts = GateOpts {
        quick: false,
        out: "BENCH_PR4.json".to_string(),
        reps: 3,
        seed: 2003,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts.quick = true;
                opts.reps = opts.reps.max(5);
            }
            "--out" => {
                i += 1;
                opts.out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("missing value for --out");
                    std::process::exit(2);
                });
            }
            "--reps" => {
                i += 1;
                opts.reps = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--reps N");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                opts.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed N");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: [--quick] [--out FILE] [--reps N] [--seed N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.6}");
    } else {
        out.push('0');
    }
}

fn main() {
    let gate = parse_args();
    let (ref_size, inputs) = if gate.quick {
        (5_000, 400)
    } else {
        (50_000, 1655)
    };
    let opts = fm_bench::Opts {
        ref_size,
        inputs,
        seed: gate.seed,
        naive_samples: 1,
        out: "results".to_string(),
    };

    fm_core::tracing::set_enabled(true);
    fm_core::tracing::recorder().clear();

    let bench = Workbench::new(&opts);
    let dataset = make_dataset(
        &bench.reference,
        opts.inputs,
        &fm_datagen::D2_PROBS,
        ErrorModel::TypeI,
        opts.seed,
    );

    // fig6/fig8/fig9 micro-harness: one light, one medium, one heavy
    // signature strategy.
    let strategies = [
        Strategy {
            scheme: SignatureScheme::QGrams,
            h: 1,
        },
        Strategy {
            scheme: SignatureScheme::QGramsPlusToken,
            h: 2,
        },
        Strategy {
            scheme: SignatureScheme::QGramsPlusToken,
            h: 3,
        },
    ];
    let mut rows = Vec::new();
    for s in &strategies {
        let row = run_strategy(&bench, s, &dataset, QueryMode::Osc);
        eprintln!(
            "[gate] {:>6}: accuracy {:.1}%, batch {:.1} ms, {:.2} fetches/input, {:.1} tids/input",
            row.strategy,
            row.accuracy * 100.0,
            row.batch_time.as_secs_f64() * 1e3,
            row.avg_fetches,
            row.avg_tids,
        );
        rows.push(row);
    }

    // Per-phase span totals over whatever the flight recorder retained.
    let mut phases: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for trace in fm_core::tracing::recorder().all() {
        for span in &trace.spans {
            *phases.entry(span.name).or_default() += span.duration_us();
        }
    }

    // Tracing overhead on lookup_batch: enabled vs runtime-disabled,
    // min over `reps` repetitions of the whole batch.
    let (matcher, build_time) = bench.matcher(&strategies[2]);
    let one_batch = |enabled: bool| -> f64 {
        fm_core::tracing::set_enabled(enabled);
        let start = Instant::now();
        let results = matcher
            .lookup_batch(&dataset.inputs, 1, 0.0, 1)
            .expect("lookup_batch");
        std::hint::black_box(&results);
        start.elapsed().as_secs_f64() * 1e3
    };
    // One warmup, then paired enabled/disabled reps. Scheduling and
    // frequency noise on a shared box dwarfs the per-span cost, but it
    // hits both sides of a back-to-back pair roughly equally, so the
    // minimum per-pair ratio is the robust overhead estimate: a real
    // regression inflates every pair, a noise spike only some.
    let _ = one_batch(false);
    let mut disabled_ms = f64::INFINITY;
    let mut enabled_ms = f64::INFINITY;
    let mut best_ratio = f64::INFINITY;
    for _ in 0..gate.reps.max(1) {
        let d = one_batch(false);
        let e = one_batch(true);
        disabled_ms = disabled_ms.min(d);
        enabled_ms = enabled_ms.min(e);
        best_ratio = best_ratio.min(e / d.max(1e-9));
    }
    fm_core::tracing::set_enabled(true);
    let overhead_pct = if fm_core::tracing::COMPILED {
        ((best_ratio - 1.0) * 100.0).max(0.0)
    } else {
        0.0
    };
    eprintln!(
        "[gate] lookup_batch overhead: enabled {enabled_ms:.2} ms vs disabled {disabled_ms:.2} ms \
         ({overhead_pct:.2}%, tracing {})",
        if fm_core::tracing::COMPILED {
            "compiled in"
        } else {
            "compiled out"
        },
    );

    // Replica scaling: serve the same matcher + store with 1 vs 4
    // worker/replica pairs and hammer each with 4 closed-loop clients.
    // Wall-clock, so the xtask gate interprets the speedup relative to
    // `host_parallelism` — a 1-core runner physically cannot speed up
    // and is only checked for the absence of a serialization slowdown.
    let scale_requests: usize = if gate.quick { 100 } else { 250 };
    let scale_db =
        std::sync::Arc::new(fm_store::Database::in_memory().expect("in-memory database"));
    let (scale_matcher, _) =
        fm_bench::build_matcher(&scale_db, &bench.reference, &strategies[2], gate.seed);
    let scale_matcher = std::sync::Arc::new(scale_matcher);
    let measure_qps = |workers: usize, telemetry_window_ms: u64| -> f64 {
        let server = fm_server::Server::start(
            "127.0.0.1:0",
            std::sync::Arc::clone(&scale_matcher),
            std::sync::Arc::clone(&scale_db),
            fm_server::ServerConfig {
                workers,
                replicas: workers,
                telemetry_window_ms,
                ..fm_server::ServerConfig::default()
            },
        )
        .expect("scaling server");
        let addr = server.local_addr().to_string();
        let start = Instant::now();
        let answered: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4usize)
                .map(|t| {
                    let addr = &addr;
                    let inputs = &dataset.inputs;
                    scope.spawn(move || {
                        let mut client = fm_server::Client::connect(addr).expect("connect");
                        let mut ok = 0u64;
                        for i in 0..scale_requests {
                            let input = &inputs[(t * scale_requests + i) % inputs.len()];
                            if client.lookup(input, 1, 0.0).expect("lookup reply").ok {
                                ok += 1;
                            }
                        }
                        ok
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .sum()
        });
        let wall = start.elapsed().as_secs_f64();
        server.shutdown();
        assert_eq!(
            answered,
            4 * scale_requests as u64,
            "scaling run with {workers} worker(s) dropped lookups"
        );
        answered as f64 / wall.max(1e-9)
    };
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let qps1 = measure_qps(1, 1000);
    let qps4 = measure_qps(4, 1000);
    let speedup = qps4 / qps1.max(1e-9);
    eprintln!(
        "[gate] scaling: 1 worker {qps1:.1} qps -> 4 workers {qps4:.1} qps \
         ({speedup:.2}x on {host_parallelism} core(s))"
    );

    // Telemetry overhead: the same served workload with the sampler off
    // (`telemetry_window_ms: 0`) vs aggressively on (25 ms windows —
    // 40x the default sampling rate, so the gate bounds a worst case).
    // Same paired-interleaved-reps scheme as the tracing overhead above:
    // noise hits both sides of a pair, the minimum ratio is the signal.
    let _ = measure_qps(2, 0); // warmup
    let mut telemetry_off_qps = 0.0f64;
    let mut telemetry_on_qps = 0.0f64;
    let mut telemetry_best_ratio = f64::INFINITY;
    for _ in 0..gate.reps.max(1) {
        let off = measure_qps(2, 0);
        let on = measure_qps(2, 25);
        telemetry_off_qps = telemetry_off_qps.max(off);
        telemetry_on_qps = telemetry_on_qps.max(on);
        telemetry_best_ratio = telemetry_best_ratio.min(off / on.max(1e-9));
    }
    let telemetry_overhead_pct = ((telemetry_best_ratio - 1.0) * 100.0).max(0.0);
    eprintln!(
        "[gate] telemetry overhead: sampler on {telemetry_on_qps:.1} qps vs off \
         {telemetry_off_qps:.1} qps ({telemetry_overhead_pct:.2}% at 25 ms windows)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": 1,\n  \"quick\": {},", gate.quick);
    let _ = writeln!(
        json,
        "  \"tracing_compiled\": {},",
        fm_core::tracing::COMPILED
    );
    let _ = writeln!(
        json,
        "  \"ref_size\": {ref_size},\n  \"inputs\": {inputs},\n  \"seed\": {},",
        gate.seed
    );
    json.push_str("  \"build_ms\": ");
    push_f64(&mut json, build_time.as_secs_f64() * 1e3);
    json.push_str(",\n  \"strategies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let batch_ms = r.batch_time.as_secs_f64() * 1e3;
        let throughput = inputs as f64 / r.batch_time.as_secs_f64().max(1e-9);
        let _ = write!(json, "    {{\"strategy\": \"{}\", ", r.strategy);
        json.push_str("\"batch_ms\": ");
        push_f64(&mut json, batch_ms);
        json.push_str(", \"throughput_per_s\": ");
        push_f64(&mut json, throughput);
        for (key, v) in [
            ("accuracy", r.accuracy),
            ("avg_fetches", r.avg_fetches),
            ("avg_tids", r.avg_tids),
            ("avg_eti_lookups", r.avg_eti_lookups),
            ("avg_eti_rows", r.avg_eti_rows),
            ("avg_fms_evals", r.avg_fms_evals),
            ("avg_apx_pruned", r.avg_apx_pruned),
        ] {
            let _ = write!(json, ", \"{key}\": ");
            push_f64(&mut json, v);
        }
        json.push('}');
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"overhead\": {\"enabled_ms\": ");
    push_f64(&mut json, enabled_ms);
    json.push_str(", \"disabled_ms\": ");
    push_f64(&mut json, disabled_ms);
    json.push_str(", \"overhead_pct\": ");
    push_f64(&mut json, overhead_pct);
    json.push_str("},\n  \"scaling\": {\"workers_1_qps\": ");
    push_f64(&mut json, qps1);
    json.push_str(", \"workers_4_qps\": ");
    push_f64(&mut json, qps4);
    json.push_str(", \"speedup\": ");
    push_f64(&mut json, speedup);
    let _ = write!(
        json,
        ", \"host_parallelism\": {host_parallelism}, \"clients\": 4, \
         \"requests_per_client\": {scale_requests}"
    );
    json.push_str("},\n  \"telemetry\": {\"qps_on\": ");
    push_f64(&mut json, telemetry_on_qps);
    json.push_str(", \"qps_off\": ");
    push_f64(&mut json, telemetry_off_qps);
    json.push_str(", \"overhead_pct\": ");
    push_f64(&mut json, telemetry_overhead_pct);
    json.push_str(", \"window_ms\": 25");
    json.push_str("},\n  \"phases_us\": {");
    for (i, (name, us)) in phases.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{name}\": {us}");
    }
    json.push_str("}\n}\n");

    std::fs::write(&gate.out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", gate.out);
        std::process::exit(1);
    });
    eprintln!("[gate] wrote {}", gate.out);
}
