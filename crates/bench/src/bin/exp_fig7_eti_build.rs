//! Figure 7 — ETI build time, normalized by one naive lookup.
//!
//! Paper observations to reproduce: build time grows with signature size,
//! `Q+T_H` costs more than `Q_H` (extra token rows), and every setting
//! stays under a small constant number of naive lookups — "if we have more
//! than 10 input tuples to fuzzy match, it seems advantageous to build the
//! ETI".

use fm_bench::{
    default_strategies, make_dataset, naive_single_lookup_time, write_csv, Opts, Table, Workbench,
};
use fm_core::naive::NaiveMatcher;
use fm_core::Record;
use fm_datagen::{ErrorModel, D2_PROBS};

fn main() {
    let opts = Opts::from_args();
    let bench = Workbench::new(&opts);

    // The normalization unit.
    let tuples: Vec<(u32, Record)> = bench
        .reference
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, r)| (i as u32 + 1, r))
        .collect();
    let naive = NaiveMatcher::from_records(&tuples, default_strategies()[0].config(opts.seed));
    let sample = make_dataset(
        &bench.reference,
        opts.naive_samples.max(1),
        &D2_PROBS,
        ErrorModel::TypeI,
        opts.seed ^ 0x7A11,
    );
    let unit = naive_single_lookup_time(&naive, &sample, opts.naive_samples);
    eprintln!("[fig7] naive unit = {:.1} ms", unit.as_secs_f64() * 1e3);

    let mut table = Table::new(
        "Figure 7 — ETI building time (normalized by one naive lookup)",
        &[
            "strategy",
            "normalized",
            "seconds",
            "eti entries",
            "pre-ETI rows",
        ],
    );
    for strategy in default_strategies() {
        let (matcher, build_time) = bench.matcher(&strategy);
        let stats = matcher.build_stats().expect("fresh build");
        let entries = matcher.eti_entry_count().expect("entry count");
        eprintln!(
            "[fig7] {:>6}: {:.2}s ({} entries)",
            strategy.label(),
            build_time.as_secs_f64(),
            entries
        );
        table.row(vec![
            strategy.label(),
            format!(
                "{:.2}",
                build_time.as_secs_f64() / unit.as_secs_f64().max(1e-9)
            ),
            format!("{:.2}", build_time.as_secs_f64()),
            entries.to_string(),
            stats.pre_eti_records.to_string(),
        ]);
    }
    write_csv(&table, &opts.out, "fig7_eti_build");
}
