//! Table formatting and CSV output.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned table that can also serialize itself as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (header + rows; minimal quoting).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Print a table to stdout and write it as `<out>/<name>.csv`.
pub fn write_csv(table: &Table, out_dir: &str, name: &str) {
    println!("{}", table.render());
    let dir = Path::new(out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {out_dir}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(table.to_csv().as_bytes()) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[csv written to {}]\n", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["strategy", "accuracy"]);
        t.row(vec!["Q+T_3".into(), "91.2%".into()]);
        t.row(vec!["Q_1".into(), "85.0%".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("strategy"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines equal length (alignment).
        assert_eq!(lines[3].len(), lines[4].len());
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["plain".into(), "needs,quote".into()]);
        t.row(vec!["has\"q".into(), "fine".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"needs,quote\""));
        assert!(csv.contains("\"has\"\"q\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
