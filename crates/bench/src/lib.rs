//! # fm-bench — the paper's evaluation, reproduced
//!
//! Shared harness behind the `exp_*` binaries, one per table/figure of the
//! paper's §6 (see DESIGN.md §3 for the experiment index):
//!
//! | binary               | reproduces                                     |
//! |----------------------|------------------------------------------------|
//! | `exp_ed_vs_fms`      | §6.2.1.1 accuracy table (ed vs fms, Type I/II) |
//! | `exp_fig5_accuracy`  | Figure 5 (accuracy per strategy, D1–D3)        |
//! | `exp_fig6_time`      | Figure 6 (normalized elapsed times)            |
//! | `exp_fig7_eti_build` | Figure 7 (normalized ETI build times)          |
//! | `exp_fig8_candidates`| Figure 8 (candidate fetches, OSC split)        |
//! | `exp_fig9_tids`      | Figure 9 (tids processed per input)            |
//! | `exp_fig10_osc`      | Figure 10 (OSC success fractions)              |
//! | `exp_all`            | everything above in one run, shared datasets   |
//! | `exp_ablations`      | design-choice ablations (DESIGN.md §10)        |
//!
//! Every binary accepts `--ref-size N --inputs N --seed N --out DIR` and
//! writes both an aligned table to stdout and CSV files under `--out`
//! (default `results/`).

pub mod harness;
pub mod opts;
pub mod report;

pub use harness::{
    accuracy, answer_correct, build_matcher, default_strategies, ed_accuracy, make_dataset,
    naive_accuracy, naive_single_lookup_time, normalize, reference_records, run_full_suite,
    run_full_suite_with, run_strategy, run_strategy_with, EfficiencyRow, Strategy, SuiteResult,
    Workbench,
};
pub use opts::Opts;
pub use report::{write_csv, Table};
