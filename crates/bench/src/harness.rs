//! Shared experiment harness: strategies, datasets, matchers, metrics.

use std::time::{Duration, Instant};

use fm_core::config::OscStopping;
use fm_core::naive::{EditDistanceMatcher, NaiveMatcher};
use fm_core::{Config, FuzzyMatcher, QueryMode, Record, SignatureScheme};
use fm_datagen::{
    generate_customers, make_inputs, ErrorModel, ErrorSpec, GeneratorConfig, InputDataset,
    CUSTOMER_COLUMNS,
};
use fm_store::Database;

use crate::opts::Opts;

/// One point on the paper's strategy axis (`Q_H` / `Q+T_H`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strategy {
    pub scheme: SignatureScheme,
    pub h: usize,
}

impl Strategy {
    pub fn label(&self) -> String {
        self.scheme.label(self.h)
    }

    /// Matcher configuration for this strategy with the paper's settings
    /// (q = 4, c_ins = 0.5, stop threshold 10 000).
    pub fn config(&self, seed: u64) -> Config {
        Config::default()
            .with_columns(&CUSTOMER_COLUMNS)
            .with_signature(self.scheme, self.h)
            .with_seed(seed)
    }

    /// Like [`Strategy::config`] with an explicit OSC stopping flavor.
    pub fn config_with(&self, seed: u64, osc: OscStopping) -> Config {
        self.config(seed).with_osc_stopping(osc)
    }
}

/// The paper's strategy axis in Figure 5–10 order:
/// `Q+T_0, Q_1, Q+T_1, Q_2, Q+T_2, Q_3, Q+T_3`.
pub fn default_strategies() -> Vec<Strategy> {
    let mut v = vec![Strategy {
        scheme: SignatureScheme::QGramsPlusToken,
        h: 0,
    }];
    for h in 1..=3 {
        v.push(Strategy {
            scheme: SignatureScheme::QGrams,
            h,
        });
        v.push(Strategy {
            scheme: SignatureScheme::QGramsPlusToken,
            h,
        });
    }
    v
}

/// Generate the synthetic Customer reference relation.
pub fn reference_records(opts: &Opts) -> Vec<Record> {
    generate_customers(&GeneratorConfig::new(opts.ref_size, opts.seed))
}

/// Generate an erroneous input dataset from the reference.
pub fn make_dataset(
    reference: &[Record],
    count: usize,
    probs: &[f64; 4],
    model: ErrorModel,
    seed: u64,
) -> InputDataset {
    make_inputs(reference, count, &ErrorSpec::new(probs, model, seed))
}

/// Shared state for one experiment run: the reference relation and the
/// database holding per-strategy matchers. Matchers are built once per
/// strategy and cached, so a suite touching several datasets pays each
/// build exactly once.
pub struct Workbench {
    pub db: Database,
    pub reference: Vec<Record>,
    pub opts: Opts,
    matchers: std::cell::RefCell<
        std::collections::HashMap<String, (std::sync::Arc<FuzzyMatcher>, Duration)>,
    >,
}

impl Workbench {
    pub fn new(opts: &Opts) -> Workbench {
        let reference = reference_records(opts);
        Workbench {
            db: Database::in_memory().expect("in-memory database"),
            reference,
            opts: opts.clone(),
            matchers: std::cell::RefCell::new(std::collections::HashMap::new()),
        }
    }

    /// Build (or reuse) the matcher for a strategy under the default
    /// (sound) OSC stopping flavor.
    pub fn matcher(&self, strategy: &Strategy) -> (std::sync::Arc<FuzzyMatcher>, Duration) {
        self.matcher_with(strategy, OscStopping::Sound)
    }

    /// Build (or reuse) the matcher for a strategy and OSC stopping flavor;
    /// the build time is that of the original build.
    pub fn matcher_with(
        &self,
        strategy: &Strategy,
        osc: OscStopping,
    ) -> (std::sync::Arc<FuzzyMatcher>, Duration) {
        let label = format!("{}:{osc:?}", strategy.label());
        if let Some((m, d)) = self.matchers.borrow().get(&label) {
            return (std::sync::Arc::clone(m), *d);
        }
        let prefix = format!("cust_{}_{osc:?}", strategy.label().replace('+', "t"));
        let start = Instant::now();
        let matcher = FuzzyMatcher::build(
            &self.db,
            &prefix,
            self.reference.iter().cloned(),
            strategy.config_with(self.opts.seed, osc),
        )
        .expect("matcher build");
        let elapsed = start.elapsed();
        let matcher = std::sync::Arc::new(matcher);
        self.matchers
            .borrow_mut()
            .insert(label, (std::sync::Arc::clone(&matcher), elapsed));
        (matcher, elapsed)
    }
}

/// Build a matcher for `strategy` over `reference` inside `db`, timed.
pub fn build_matcher(
    db: &Database,
    reference: &[Record],
    strategy: &Strategy,
    seed: u64,
) -> (FuzzyMatcher, Duration) {
    let prefix = format!("cust_{}", strategy.label().replace('+', "t"));
    let start = Instant::now();
    let matcher = FuzzyMatcher::build(
        db,
        &prefix,
        reference.iter().cloned(),
        strategy.config(seed),
    )
    .expect("matcher build");
    (matcher, start.elapsed())
}

/// Was the answer correct? The paper counts an input correct when the seed
/// tuple is returned as the closest match; synthetic data can contain exact
/// duplicate tuples, so an answer identical in content to the seed also
/// counts (either tuple is "the" seed).
pub fn answer_correct(
    reference: &[Record],
    target_index: usize,
    answer_tid: Option<u32>,
    answer_record: Option<&Record>,
) -> bool {
    match answer_tid {
        None => false,
        Some(tid) => {
            if tid as usize == target_index + 1 {
                return true;
            }
            match answer_record {
                Some(rec) => rec.values() == reference[target_index].values(),
                None => {
                    let idx = tid as usize - 1;
                    idx < reference.len()
                        && reference[idx].values() == reference[target_index].values()
                }
            }
        }
    }
}

/// Accuracy of a matcher over a dataset (paper metric 2), K = 1, c = 0.
pub fn accuracy(
    matcher: &FuzzyMatcher,
    reference: &[Record],
    dataset: &InputDataset,
    mode: QueryMode,
) -> f64 {
    let mut correct = 0usize;
    for (i, input) in dataset.inputs.iter().enumerate() {
        let result = matcher.lookup_with(input, 1, 0.0, mode).expect("lookup");
        let m = result.matches.first();
        if answer_correct(
            reference,
            dataset.targets[i],
            m.map(|m| m.tid),
            m.map(|m| &m.record),
        ) {
            correct += 1;
        }
    }
    correct as f64 / dataset.inputs.len() as f64
}

/// Accuracy of the naive fms baseline.
pub fn naive_accuracy(naive: &NaiveMatcher, reference: &[Record], dataset: &InputDataset) -> f64 {
    let mut correct = 0usize;
    for (i, input) in dataset.inputs.iter().enumerate() {
        let hits = naive.lookup(input, 1, 0.0);
        if answer_correct(
            reference,
            dataset.targets[i],
            hits.first().map(|m| m.tid),
            None,
        ) {
            correct += 1;
        }
    }
    correct as f64 / dataset.inputs.len() as f64
}

/// Accuracy of the edit-distance baseline.
pub fn ed_accuracy(ed: &EditDistanceMatcher, reference: &[Record], dataset: &InputDataset) -> f64 {
    let mut correct = 0usize;
    for (i, input) in dataset.inputs.iter().enumerate() {
        let hits = ed.lookup(input, 1, 0.0);
        if answer_correct(
            reference,
            dataset.targets[i],
            hits.first().map(|m| m.tid),
            None,
        ) {
            correct += 1;
        }
    }
    correct as f64 / dataset.inputs.len() as f64
}

/// Mean elapsed time of a single naive full-scan lookup (the denominator of
/// the paper's *normalized elapsed time*).
pub fn naive_single_lookup_time(
    naive: &NaiveMatcher,
    dataset: &InputDataset,
    samples: usize,
) -> Duration {
    let n = samples.min(dataset.inputs.len()).max(1);
    let start = Instant::now();
    for input in dataset.inputs.iter().take(n) {
        std::hint::black_box(naive.lookup(input, 1, 0.0));
    }
    start.elapsed() / n as u32
}

/// Per-strategy measurements for the efficiency figures (6–10).
#[derive(Debug, Clone)]
pub struct EfficiencyRow {
    pub strategy: String,
    pub accuracy: f64,
    pub build_time: Duration,
    pub batch_time: Duration,
    /// batch time / naive single-lookup time (paper metric 1, Figure 6).
    pub normalized_time: f64,
    /// build time / naive single-lookup time (Figure 7).
    pub normalized_build: f64,
    /// Mean reference tuples fetched per input (Figure 8).
    pub avg_fetches: f64,
    /// Mean fetches among OSC-successful inputs (Figure 8 split).
    pub avg_fetches_osc_success: f64,
    /// Mean fetches among OSC-failed inputs (Figure 8 split).
    pub avg_fetches_osc_failure: f64,
    /// Mean tids processed per input (Figure 9).
    pub avg_tids: f64,
    /// Fraction of inputs answered by a successful short circuit (Fig 10).
    pub osc_success_fraction: f64,
    /// Mean logical ETI lookups per input.
    pub avg_eti_lookups: f64,
    /// Mean ETI rows (B+-tree chunk records) touched per input.
    pub avg_eti_rows: f64,
    /// Mean exact `fms` evaluations per input (equals fetches: every
    /// fetched candidate is verified exactly once).
    pub avg_fms_evals: f64,
    /// Mean candidates pruned by the `fms_apx` score bound per input.
    pub avg_apx_pruned: f64,
}

/// Run the full efficiency suite over one dataset for one strategy.
pub fn run_strategy(
    bench: &Workbench,
    strategy: &Strategy,
    dataset: &InputDataset,
    mode: QueryMode,
) -> EfficiencyRow {
    run_strategy_with(bench, strategy, dataset, mode, OscStopping::Sound)
}

/// [`run_strategy`] with an explicit OSC stopping flavor.
pub fn run_strategy_with(
    bench: &Workbench,
    strategy: &Strategy,
    dataset: &InputDataset,
    mode: QueryMode,
    osc: OscStopping,
) -> EfficiencyRow {
    let (matcher, build_time) = bench.matcher_with(strategy, osc);
    let mut correct = 0usize;
    let mut fetches = 0u64;
    let mut fetches_success = 0u64;
    let mut fetches_failure = 0u64;
    let mut success = 0usize;
    let mut tids = 0u64;
    let mut lookups = 0u64;
    let mut eti_rows = 0u64;
    let mut fms_evals = 0u64;
    let mut apx_pruned = 0u64;
    let start = Instant::now();
    for (i, input) in dataset.inputs.iter().enumerate() {
        let result = matcher.lookup_with(input, 1, 0.0, mode).expect("lookup");
        let m = result.matches.first();
        if answer_correct(
            &bench.reference,
            dataset.targets[i],
            m.map(|m| m.tid),
            m.map(|m| &m.record),
        ) {
            correct += 1;
        }
        // Everything below comes straight off the query-path trace; the
        // harness no longer recomputes any counter the matcher already
        // accounts for.
        let t = result.trace;
        fetches += t.candidates_fetched;
        tids += t.tids_processed;
        lookups += t.qgrams_probed;
        eti_rows += t.eti_rows;
        fms_evals += t.fms_evals;
        apx_pruned += t.apx_pruned;
        if t.osc_succeeded() {
            success += 1;
            fetches_success += t.candidates_fetched;
        } else {
            fetches_failure += t.candidates_fetched;
        }
    }
    let batch_time = start.elapsed();
    let n = dataset.inputs.len() as f64;
    let failures = dataset.inputs.len() - success;
    EfficiencyRow {
        strategy: strategy.label(),
        accuracy: correct as f64 / n,
        build_time,
        batch_time,
        normalized_time: 0.0, // filled by the caller once the naive time is known
        normalized_build: 0.0, // ditto
        avg_fetches: fetches as f64 / n,
        avg_fetches_osc_success: if success > 0 {
            fetches_success as f64 / success as f64
        } else {
            0.0
        },
        avg_fetches_osc_failure: if failures > 0 {
            fetches_failure as f64 / failures as f64
        } else {
            0.0
        },
        avg_tids: tids as f64 / n,
        osc_success_fraction: success as f64 / n,
        avg_eti_lookups: lookups as f64 / n,
        avg_eti_rows: eti_rows as f64 / n,
        avg_fms_evals: fms_evals as f64 / n,
        avg_apx_pruned: apx_pruned as f64 / n,
    }
}

/// Fill the normalized columns given the measured naive unit time.
pub fn normalize(rows: &mut [EfficiencyRow], naive_unit: Duration) {
    let unit = naive_unit.as_secs_f64().max(1e-9);
    for r in rows {
        r.normalized_time = r.batch_time.as_secs_f64() / unit;
        r.normalized_build = r.build_time.as_secs_f64() / unit;
    }
}

/// Results of the full §6.2 efficiency/accuracy suite.
pub struct SuiteResult {
    /// `(dataset label, rows per strategy)` for D1, D2, D3.
    pub datasets: Vec<(String, Vec<EfficiencyRow>)>,
    /// Mean single-input naive scan time (the normalization unit).
    pub naive_unit: Duration,
}

/// Run every strategy over D1–D3 (Type I errors, Table 5 probabilities),
/// with the paper's parameters (K = 1, q = 4, c = 0, c_ins = 0.5). All of
/// Figures 5–10 are projections of this result.
pub fn run_full_suite(opts: &Opts, mode: QueryMode) -> SuiteResult {
    run_full_suite_with(opts, mode, OscStopping::Sound)
}

/// [`run_full_suite`] with an explicit OSC stopping flavor.
pub fn run_full_suite_with(opts: &Opts, mode: QueryMode, osc: OscStopping) -> SuiteResult {
    let bench = Workbench::new(opts);
    let dataset_specs: [(&str, [f64; 4]); 3] = [
        ("D1", fm_datagen::D1_PROBS),
        ("D2", fm_datagen::D2_PROBS),
        ("D3", fm_datagen::D3_PROBS),
    ];

    // Naive unit time, measured once on D2-style inputs.
    let tuples: Vec<(u32, Record)> = bench
        .reference
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, r)| (i as u32 + 1, r))
        .collect();
    let naive_config = Strategy {
        scheme: SignatureScheme::QGramsPlusToken,
        h: 3,
    }
    .config(opts.seed);
    let naive = NaiveMatcher::from_records(&tuples, naive_config);
    let sample_ds = make_dataset(
        &bench.reference,
        opts.naive_samples.max(1),
        &fm_datagen::D2_PROBS,
        ErrorModel::TypeI,
        opts.seed ^ 0x7A11,
    );
    let naive_unit = naive_single_lookup_time(&naive, &sample_ds, opts.naive_samples);
    eprintln!(
        "[suite] reference = {} tuples, naive single-lookup = {:.1} ms",
        bench.reference.len(),
        naive_unit.as_secs_f64() * 1e3
    );

    let mut datasets = Vec::new();
    for (label, probs) in dataset_specs {
        let dataset = make_dataset(
            &bench.reference,
            opts.inputs,
            &probs,
            ErrorModel::TypeI,
            opts.seed + label.as_bytes()[1] as u64,
        );
        let mut rows = Vec::new();
        for strategy in default_strategies() {
            let row = run_strategy_with(&bench, &strategy, &dataset, mode, osc);
            eprintln!(
                "[suite] {label} {:>6}: accuracy {:.1}%, batch {:.2}s",
                row.strategy,
                row.accuracy * 100.0,
                row.batch_time.as_secs_f64()
            );
            rows.push(row);
        }
        normalize(&mut rows, naive_unit);
        datasets.push((label.to_string(), rows));
    }
    SuiteResult {
        datasets,
        naive_unit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> Opts {
        Opts {
            ref_size: 400,
            inputs: 40,
            seed: 11,
            naive_samples: 5,
            out: "/tmp".into(),
        }
    }

    #[test]
    fn strategy_axis_matches_paper() {
        let labels: Vec<String> = default_strategies().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["Q+T_0", "Q_1", "Q+T_1", "Q_2", "Q+T_2", "Q_3", "Q+T_3"]
        );
    }

    #[test]
    fn end_to_end_small_run() {
        let opts = small_opts();
        let bench = Workbench::new(&opts);
        let dataset = make_dataset(
            &bench.reference,
            opts.inputs,
            &fm_datagen::D3_PROBS,
            ErrorModel::TypeI,
            opts.seed,
        );
        let strategy = Strategy {
            scheme: SignatureScheme::QGramsPlusToken,
            h: 2,
        };
        let row = run_strategy(&bench, &strategy, &dataset, QueryMode::Osc);
        assert!(row.accuracy > 0.5, "accuracy {:.3} too low", row.accuracy);
        assert!(row.avg_eti_lookups > 0.0);
        assert!(row.avg_tids > 0.0);
        assert!(row.avg_fetches > 0.0);
        assert!(row.avg_eti_rows > 0.0);
        // Every fetched candidate is verified with exactly one fms call.
        assert!((row.avg_fms_evals - row.avg_fetches).abs() < 1e-12);
    }

    #[test]
    fn answer_correct_accepts_duplicate_content() {
        let refs = vec![
            Record::new(&["a b", "c", "d", "e"]),
            Record::new(&["a b", "c", "d", "e"]), // duplicate of 0
            Record::new(&["x", "y", "z", "w"]),
        ];
        // Target is tuple 0, but the matcher returned tid 2 (the duplicate).
        assert!(answer_correct(&refs, 0, Some(2), None));
        assert!(answer_correct(&refs, 0, Some(1), None));
        assert!(!answer_correct(&refs, 0, Some(3), None));
        assert!(!answer_correct(&refs, 0, None, None));
        // With an answer record, content comparison applies.
        let dup = refs[1].clone();
        assert!(answer_correct(&refs, 0, Some(2), Some(&dup)));
    }

    #[test]
    fn naive_baseline_runs() {
        let opts = small_opts();
        let bench = Workbench::new(&opts);
        let tuples: Vec<(u32, Record)> = bench
            .reference
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, r)| (i as u32 + 1, r))
            .collect();
        let naive = NaiveMatcher::from_records(
            &tuples,
            Strategy {
                scheme: SignatureScheme::QGramsPlusToken,
                h: 2,
            }
            .config(opts.seed),
        );
        let dataset = make_dataset(
            &bench.reference,
            10,
            &fm_datagen::D3_PROBS,
            ErrorModel::TypeI,
            opts.seed,
        );
        let acc = naive_accuracy(&naive, &bench.reference, &dataset);
        assert!(acc > 0.5);
        let t = naive_single_lookup_time(&naive, &dataset, 3);
        assert!(t.as_nanos() > 0);
    }
}
