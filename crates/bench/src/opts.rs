//! Minimal command-line parsing shared by the experiment binaries.

/// Common experiment options.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Reference relation size (paper: ~1.7–2 M; default 100 k so the whole
    /// suite runs in minutes on a laptop).
    pub ref_size: usize,
    /// Input tuples per dataset (paper: 1655).
    pub inputs: usize,
    /// Master seed.
    pub seed: u64,
    /// Inputs used to estimate the naive per-tuple scan time.
    pub naive_samples: usize,
    /// Output directory for CSV files.
    pub out: String,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            ref_size: 100_000,
            inputs: 1655,
            seed: 2003,
            naive_samples: 20,
            out: "results".to_string(),
        }
    }
}

impl Opts {
    /// Parse from `std::env::args`. Unknown flags abort with usage.
    pub fn from_args() -> Opts {
        let mut opts = Opts::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i)
                    .unwrap_or_else(|| {
                        eprintln!("missing value for {flag}");
                        std::process::exit(2);
                    })
                    .clone()
            };
            match flag {
                "--ref-size" => opts.ref_size = value(&mut i).parse().expect("--ref-size N"),
                "--inputs" => opts.inputs = value(&mut i).parse().expect("--inputs N"),
                "--seed" => opts.seed = value(&mut i).parse().expect("--seed N"),
                "--naive-samples" => {
                    opts.naive_samples = value(&mut i).parse().expect("--naive-samples N")
                }
                "--out" => opts.out = value(&mut i),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--ref-size N] [--inputs N] [--seed N] \
                         [--naive-samples N] [--out DIR]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_shape() {
        let o = Opts::default();
        assert_eq!(o.inputs, 1655); // the paper's input batch size
        assert!(o.ref_size >= 10_000);
        assert_eq!(o.out, "results");
    }
}
