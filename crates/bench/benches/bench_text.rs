//! Microbenchmarks for the string kernels: the per-pair costs that the
//! naive baseline multiplies by |R| and the query processor pays per
//! candidate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fm_text::{EditBuffer, MinHasher, Tokenizer};

fn bench_edit_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("edit_distance");
    let mut buf = EditBuffer::new();
    group.bench_function("short_pair", |b| {
        b.iter(|| buf.normalized(black_box("boeing"), black_box("beoing")))
    });
    group.bench_function("medium_pair", |b| {
        b.iter(|| buf.normalized(black_box("corporation"), black_box("company")))
    });
    group.bench_function("long_pair", |b| {
        b.iter(|| {
            buf.normalized(
                black_box("internationalbusinessmachines"),
                black_box("internationalbusinesmachine"),
            )
        })
    });
    group.finish();
}

fn bench_qgrams_and_minhash(c: &mut Criterion) {
    let mut group = c.benchmark_group("signatures");
    group.bench_function("qgram_set_q4", |b| {
        b.iter(|| fm_text::qgram_set(black_box("corporation"), 4))
    });
    let mh1 = MinHasher::new(1, 4, 7);
    let mh3 = MinHasher::new(3, 4, 7);
    group.bench_function("minhash_h1", |b| {
        b.iter(|| mh1.signature(black_box("corporation")))
    });
    group.bench_function("minhash_h3", |b| {
        b.iter(|| mh3.signature(black_box("corporation")))
    });
    group.finish();
}

fn bench_tokenize(c: &mut Criterion) {
    let tokenizer = Tokenizer::new();
    c.bench_function("tokenize_customer_name", |b| {
        b.iter(|| tokenizer.tokenize(black_box("Pacific Barker Holdings Corporation")))
    });
}

criterion_group!(
    benches,
    bench_edit_distance,
    bench_qgrams_and_minhash,
    bench_tokenize
);
criterion_main!(benches);
