//! Per-pair similarity costs: `fms` vs tuple-level `ed` (the two functions
//! compared in the paper's §6.2.1.1), plus the §5 extensions. These costs
//! dominate the naive baseline and the verification phase.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fm_core::naive::EditDistanceMatcher;
use fm_core::record::TokenizedRecord;
use fm_core::sim::Similarity;
use fm_core::weights::{TokenFrequencies, WeightTable};
use fm_core::{Config, Record, TranspositionCost};
use fm_datagen::{generate_customers, GeneratorConfig, CUSTOMER_COLUMNS};
use fm_text::Tokenizer;

fn setup() -> (WeightTable, Vec<TokenizedRecord>, Vec<Record>) {
    let reference = generate_customers(&GeneratorConfig::new(2000, 7));
    let tokenizer = Tokenizer::new();
    let mut freqs = TokenFrequencies::new(4);
    let tokenized: Vec<TokenizedRecord> =
        reference.iter().map(|r| r.tokenize(&tokenizer)).collect();
    for t in &tokenized {
        freqs.observe(t);
    }
    (WeightTable::new(freqs), tokenized, reference)
}

fn bench_fms_pair(c: &mut Criterion) {
    let (weights, tokenized, _reference) = setup();
    let config = Config::default().with_columns(&CUSTOMER_COLUMNS);
    let mut sim = Similarity::new(&weights, &config);
    let u = &tokenized[0];
    let v = &tokenized[1];
    let mut group = c.benchmark_group("similarity_pair");
    group.bench_function("fms", |b| b.iter(|| sim.fms(black_box(u), black_box(v))));

    let tr_config = Config::default()
        .with_columns(&CUSTOMER_COLUMNS)
        .with_transposition(TranspositionCost::Average);
    let mut tr_sim = Similarity::new(&weights, &tr_config);
    group.bench_function("fms_with_transposition", |b| {
        b.iter(|| tr_sim.fms(black_box(u), black_box(v)))
    });

    let wcol_config = Config::default()
        .with_columns(&CUSTOMER_COLUMNS)
        .with_column_weights(&[2.0, 1.0, 0.5, 3.0]);
    let mut wcol_sim = Similarity::new(&weights, &wcol_config);
    group.bench_function("fms_with_column_weights", |b| {
        b.iter(|| wcol_sim.fms(black_box(u), black_box(v)))
    });
    group.finish();
}

fn bench_ed_pair(c: &mut Criterion) {
    let u = Record::new(&["pacific barker holdings", "seattle", "wa", "98004"]);
    let v = Record::new(&["pacific parker holding", "seattle", "wa", "98014"]);
    c.bench_function("similarity_pair/tuple_ed", |b| {
        b.iter(|| EditDistanceMatcher::similarity(black_box(&u), black_box(&v)))
    });
}

fn bench_scan_1000(c: &mut Criterion) {
    // The unit of the naive baseline: similarity against 1000 tuples.
    let (weights, tokenized, _) = setup();
    let config = Config::default().with_columns(&CUSTOMER_COLUMNS);
    let mut sim = Similarity::new(&weights, &config);
    let u = tokenized[0].clone();
    c.bench_function("naive_scan_1000_fms", |b| {
        b.iter(|| {
            let mut best = 0.0f64;
            for v in tokenized.iter().take(1000) {
                best = best.max(sim.fms(black_box(&u), v));
            }
            best
        })
    });
}

criterion_group!(benches, bench_fms_pair, bench_ed_pair, bench_scan_1000);
criterion_main!(benches);
