//! Storage substrate microbenchmarks: B+-tree point ops and range scans,
//! heap access, and the external sorter that powers the ETI build.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fm_store::{BTree, BufferPool, ExternalSorter, HeapFile, MemPager};

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(Box::new(MemPager::new()), 1024))
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.bench_function("insert_10k_sequential", |b| {
        b.iter(|| {
            let tree = BTree::create(pool()).unwrap();
            for i in 0..10_000u32 {
                tree.insert(&i.to_be_bytes(), b"value").unwrap();
            }
            tree
        })
    });

    let tree = BTree::create(pool()).unwrap();
    for i in 0..100_000u32 {
        tree.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    let mut key = 0u32;
    group.bench_function("get_hot_100k", |b| {
        b.iter(|| {
            key = key.wrapping_mul(2654435761).wrapping_add(12345) % 100_000;
            tree.get(black_box(&key.to_be_bytes())).unwrap()
        })
    });
    group.bench_function("prefix_scan_256", |b| {
        // Scan a 256-key aligned range (like one ETI chunk group).
        b.iter(|| {
            let start = 4096u32;
            let mut scan = tree
                .range(
                    std::ops::Bound::Included(&start.to_be_bytes()[..]),
                    std::ops::Bound::Excluded(&(start + 256).to_be_bytes()[..]),
                )
                .unwrap();
            let mut n = 0;
            while scan.next_entry().unwrap().is_some() {
                n += 1;
            }
            n
        })
    });
    group.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap");
    let heap = HeapFile::create(pool()).unwrap();
    let rids: Vec<_> = (0..50_000)
        .map(|i| {
            heap.insert(format!("customer record number {i}").as_bytes())
                .unwrap()
        })
        .collect();
    let mut i = 0usize;
    group.bench_function("get_hot", |b| {
        b.iter(|| {
            i = (i.wrapping_mul(48271).wrapping_add(7)) % rids.len();
            heap.get(black_box(rids[i])).unwrap()
        })
    });
    group.bench_function("insert", |b| {
        let heap = HeapFile::create(pool()).unwrap();
        b.iter(|| heap.insert(black_box(b"a modest customer record")).unwrap())
    });
    group.finish();
}

fn bench_extsort(c: &mut Criterion) {
    let records: Vec<Vec<u8>> = (0..20_000u32)
        .map(|i| {
            let x = i.wrapping_mul(2654435761);
            format!("pre-eti-record-{x:010}").into_bytes()
        })
        .collect();
    let mut group = c.benchmark_group("extsort");
    group.sample_size(20);
    group.bench_function("sort_20k_in_memory", |b| {
        b.iter(|| {
            let mut sorter = ExternalSorter::with_budget(64 << 20).unwrap();
            for r in &records {
                sorter.push(r).unwrap();
            }
            sorter.finish().unwrap().count()
        })
    });
    group.bench_function("sort_20k_spilled", |b| {
        b.iter(|| {
            let mut sorter = ExternalSorter::with_budget(64 << 10).unwrap();
            for r in &records {
                sorter.push(r).unwrap();
            }
            sorter.finish().unwrap().count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_btree, bench_heap, bench_extsort);
criterion_main!(benches);
