//! End-to-end lookup latency (the criterion anchor of Figure 6): basic vs
//! OSC, `Q_H` vs `Q+T_H`, clean vs dirty inputs, vs the naive full scan.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fm_core::naive::NaiveMatcher;
use fm_core::{Config, FuzzyMatcher, OscStopping, QueryMode, Record, SignatureScheme};
use fm_datagen::{
    generate_customers, make_inputs, ErrorModel, ErrorSpec, GeneratorConfig, CUSTOMER_COLUMNS,
    D2_PROBS,
};
use fm_store::Database;

const REF_SIZE: usize = 10_000;

fn build(scheme: SignatureScheme, h: usize, osc: OscStopping) -> (Database, FuzzyMatcher) {
    let reference = generate_customers(&GeneratorConfig::new(REF_SIZE, 7));
    let db = Database::in_memory().unwrap();
    let config = Config::default()
        .with_columns(&CUSTOMER_COLUMNS)
        .with_signature(scheme, h)
        .with_osc_stopping(osc);
    let matcher = FuzzyMatcher::build(&db, "c", reference.into_iter(), config).unwrap();
    (db, matcher)
}

fn dirty_inputs() -> Vec<Record> {
    let reference = generate_customers(&GeneratorConfig::new(REF_SIZE, 7));
    make_inputs(
        &reference,
        64,
        &ErrorSpec::new(&D2_PROBS, ErrorModel::TypeI, 9),
    )
    .inputs
}

fn bench_lookup_modes(c: &mut Criterion) {
    let (_db, matcher) = build(
        SignatureScheme::QGramsPlusToken,
        3,
        OscStopping::PaperExample,
    );
    let inputs = dirty_inputs();
    let mut group = c.benchmark_group("lookup_10k_qt3");
    let mut i = 0usize;
    for (name, mode) in [("basic", QueryMode::Basic), ("osc", QueryMode::Osc)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                i = (i + 1) % inputs.len();
                matcher
                    .lookup_with(black_box(&inputs[i]), 1, 0.0, mode)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_lookup_strategies(c: &mut Criterion) {
    let inputs = dirty_inputs();
    let mut group = c.benchmark_group("lookup_10k_by_strategy");
    group.sample_size(30);
    for (scheme, h) in [
        (SignatureScheme::QGramsPlusToken, 0),
        (SignatureScheme::QGrams, 1),
        (SignatureScheme::QGramsPlusToken, 1),
        (SignatureScheme::QGrams, 3),
        (SignatureScheme::QGramsPlusToken, 3),
    ] {
        let (_db, matcher) = build(scheme, h, OscStopping::PaperExample);
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label(h)),
            &(),
            |b, ()| {
                b.iter(|| {
                    i = (i + 1) % inputs.len();
                    matcher.lookup(black_box(&inputs[i]), 1, 0.0).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_exact_match_fast_path(c: &mut Criterion) {
    let (_db, matcher) = build(
        SignatureScheme::QGramsPlusToken,
        3,
        OscStopping::PaperExample,
    );
    let reference = generate_customers(&GeneratorConfig::new(REF_SIZE, 7));
    let mut i = 0usize;
    c.bench_function("lookup_10k_exact_input", |b| {
        b.iter(|| {
            i = (i + 1) % 64;
            let r = &reference[i];
            let input = Record::new(&[
                r.get(0).unwrap(),
                r.get(1).unwrap(),
                r.get(2).unwrap(),
                r.get(3).unwrap(),
            ]);
            matcher.lookup(black_box(&input), 1, 0.0).unwrap()
        })
    });
}

fn bench_naive_baseline(c: &mut Criterion) {
    // One naive lookup at the same scale — the denominator of Figure 6.
    let reference = generate_customers(&GeneratorConfig::new(REF_SIZE, 7));
    let tuples: Vec<(u32, Record)> = reference
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, r)| (i as u32 + 1, r))
        .collect();
    let naive =
        NaiveMatcher::from_records(&tuples, Config::default().with_columns(&CUSTOMER_COLUMNS));
    let inputs = dirty_inputs();
    let mut group = c.benchmark_group("naive_10k");
    group.sample_size(10);
    let mut i = 0usize;
    group.bench_function("single_lookup", |b| {
        b.iter(|| {
            i = (i + 1) % inputs.len();
            naive.lookup(black_box(&inputs[i]), 1, 0.0)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lookup_modes,
    bench_lookup_strategies,
    bench_exact_match_fast_path,
    bench_naive_baseline
);
criterion_main!(benches);
