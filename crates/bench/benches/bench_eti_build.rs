//! ETI build cost per strategy (the criterion anchor of Figure 7): the
//! paper's observations are that build time grows with signature size and
//! that `Q+T_H` costs more than `Q_H`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fm_core::{Config, FuzzyMatcher, SignatureScheme};
use fm_datagen::{generate_customers, GeneratorConfig, CUSTOMER_COLUMNS};
use fm_store::Database;

fn bench_eti_build(c: &mut Criterion) {
    let reference = generate_customers(&GeneratorConfig::new(2000, 7));
    let mut group = c.benchmark_group("eti_build_2k");
    group.sample_size(10);
    for (scheme, h) in [
        (SignatureScheme::QGramsPlusToken, 0),
        (SignatureScheme::QGrams, 1),
        (SignatureScheme::QGramsPlusToken, 1),
        (SignatureScheme::QGrams, 3),
        (SignatureScheme::QGramsPlusToken, 3),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label(h)),
            &(scheme, h),
            |b, &(scheme, h)| {
                b.iter(|| {
                    let db = Database::in_memory().unwrap();
                    let config = Config::default()
                        .with_columns(&CUSTOMER_COLUMNS)
                        .with_signature(scheme, h);
                    FuzzyMatcher::build(&db, "c", reference.iter().cloned(), config).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_maintenance_insert(c: &mut Criterion) {
    let reference = generate_customers(&GeneratorConfig::new(2000, 7));
    let db = Database::in_memory().unwrap();
    let config = Config::default().with_columns(&CUSTOMER_COLUMNS);
    let matcher = FuzzyMatcher::build(&db, "c", reference.iter().cloned(), config).unwrap();
    let mut i = 0u64;
    c.bench_function("eti_maintenance_insert", |b| {
        b.iter(|| {
            i += 1;
            matcher
                .insert_reference(&fm_core::Record::new(&[
                    &format!("maint{i} corporation"),
                    "seattle",
                    "wa",
                    "98001",
                ]))
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_eti_build, bench_maintenance_insert);
criterion_main!(benches);
