//! Write-ahead logging: atomic, durable checkpoints.
//!
//! [`crate::pager::FilePager`] alone gives no crash safety: a crash during
//! [`crate::buffer::BufferPool::flush`] can tear the database file across
//! page writes (a B+-tree parent updated, its child not). [`WalPager`]
//! wraps a main file with a physical, redo-only, page-image log:
//!
//! * **between checkpoints**, every page write-back (buffer-pool eviction
//!   or flush) is appended to the WAL only — the main file is never touched,
//!   so it always holds exactly the last checkpoint's state;
//! * **at checkpoint** ([`Pager::sync`], i.e. `BufferPool::flush`), a COMMIT
//!   record is appended and the WAL fsynced — that is the durability point —
//!   then every logged page is copied into the main file, the main file
//!   fsynced, and the WAL truncated;
//! * **on open**, a non-empty WAL is replayed up to its last COMMIT (a torn
//!   tail or a crash mid-copy is repaired by re-applying the committed
//!   images) and then truncated.
//!
//! The contract this gives the layers above: the database file reopens in
//! the state of the **last completed `flush()`**, atomically — never a
//! mixture of two flushes, never a torn page (records carry checksums).
//!
//! Reads go through an in-memory table of WAL-resident pages, so the pager
//! stays transparent to the buffer pool.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{Result, StoreError};
use crate::lockorder;
use crate::page::{PageId, PAGE_SIZE};
use crate::pager::{FilePager, Pager};

const RECORD_PAGE: u8 = 1;
const RECORD_COMMIT: u8 = 2;
/// Header: tag(1) + page_id(4) + checksum(8).
const HEADER_LEN: u64 = 13;

/// CRC-less checksum: the seeded FNV/SplitMix hash used across the project.
/// Detects torn records; adversarial corruption is out of scope.
fn checksum(page_id: u32, payload: &[u8]) -> u64 {
    // Reuse the deterministic hash from fm-text? fm-store must stay
    // dependency-free of it; a small FNV-1a suffices.
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut acc = FNV_OFFSET ^ u64::from(page_id).rotate_left(32);
    for chunk in payload.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        acc ^= u64::from_le_bytes(buf);
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    acc
}

struct WalState {
    file: File,
    /// Append offset.
    len: u64,
    /// Latest WAL offset (of the payload) per page since last checkpoint.
    resident: HashMap<PageId, u64>,
}

/// Report from [`WalPager::check_invariants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalCheck {
    /// Page records currently in the log (0 right after a checkpoint).
    pub records: usize,
    /// Distinct pages with a WAL-resident image.
    pub resident_pages: usize,
}

/// A crash-safe pager: main file + write-ahead log. See the module docs for
/// the protocol.
pub struct WalPager {
    main: FilePager,
    wal_path: PathBuf,
    wal: Mutex<WalState>,
    /// Logical page count (the main pager's count can lag while pages live
    /// only in the WAL).
    page_count: AtomicU32,
    /// Cumulative bytes ever appended to the WAL (records + commits); never
    /// reset by checkpoints, unlike [`WalPager::wal_len`].
    // lint:allow(relaxed-atomic): monotonic IO counter; reads need no ordering
    bytes_appended: AtomicU64,
}

impl WalPager {
    /// Open (or create) the database at `path` with its WAL at
    /// `<path>.wal`. Replays and truncates any committed WAL left over
    /// from a crash.
    pub fn open(path: &Path) -> Result<WalPager> {
        let mut wal_path = path.as_os_str().to_owned();
        wal_path.push(".wal");
        let wal_path = PathBuf::from(wal_path);

        // Recovery before anything reads the main file.
        Self::recover(path, &wal_path)?;

        let main = FilePager::open(path)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true) // recovery already consumed it
            .open(&wal_path)?;
        let count = main.page_count();
        Ok(WalPager {
            main,
            wal_path,
            wal: Mutex::new(WalState {
                file,
                len: 0,
                resident: HashMap::new(),
            }),
            page_count: AtomicU32::new(count),
            bytes_appended: AtomicU64::new(0),
        })
    }

    /// The WAL file path (exposed for tests simulating crashes by copying
    /// files mid-session).
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// Bytes currently in the WAL (0 right after a checkpoint).
    pub fn wal_len(&self) -> u64 {
        let _rank = lockorder::HeldRank::acquire(lockorder::WAL, "wal");
        self.wal.lock().len
    }

    /// Validate the WAL's on-disk record chain and in-memory bookkeeping.
    ///
    /// The WAL has no explicit LSN field; its "LSN" is the record's byte
    /// offset, and monotonicity means the records tile `0..len` exactly,
    /// each one well-formed. Checks:
    ///
    /// * every record between checkpoints is a page record (COMMIT exists
    ///   only transiently inside [`Pager::sync`]) with a valid page id and a
    ///   checksum matching its payload;
    /// * records are contiguous — offsets strictly increase with no gaps or
    ///   torn tail up to the tracked append offset;
    /// * the resident map points each page at the payload offset of its
    ///   **latest** logged image, and tracks exactly the pages logged since
    ///   the last checkpoint.
    pub fn check_invariants(&self) -> Result<WalCheck> {
        let _rank = lockorder::HeldRank::acquire(lockorder::WAL, "wal");
        let wal = self.wal.lock();
        let mut expected_resident: HashMap<PageId, u64> = HashMap::new();
        let mut records = 0usize;
        let mut offset = 0u64;
        let mut header = [0u8; HEADER_LEN as usize];
        while offset < wal.len {
            if offset + HEADER_LEN + PAGE_SIZE as u64 > wal.len {
                return Err(StoreError::Corrupt(format!(
                    "wal record at offset {offset} torn (wal length {})",
                    wal.len
                )));
            }
            wal.file.read_exact_at(&mut header, offset)?;
            if header[0] != RECORD_PAGE {
                return Err(StoreError::Corrupt(format!(
                    "wal record at offset {offset} has tag {} (expected page record {RECORD_PAGE})",
                    header[0]
                )));
            }
            let page_id = u32::from_le_bytes(
                header[1..5].try_into().expect("4-byte slice"), // lint:allow(expect): slice length is fixed
            );
            let sum = u64::from_le_bytes(
                header[5..13].try_into().expect("8-byte slice"), // lint:allow(expect): slice length is fixed
            );
            if page_id >= self.page_count.load(Ordering::Acquire) {
                return Err(StoreError::Corrupt(format!(
                    "wal record at offset {offset} references unallocated page {page_id}"
                )));
            }
            let mut payload = vec![0u8; PAGE_SIZE];
            wal.file.read_exact_at(&mut payload, offset + HEADER_LEN)?;
            if checksum(page_id, &payload) != sum {
                return Err(StoreError::Corrupt(format!(
                    "wal record at offset {offset} (page {page_id}) fails its checksum"
                )));
            }
            expected_resident.insert(PageId(page_id), offset + HEADER_LEN);
            records += 1;
            offset += HEADER_LEN + PAGE_SIZE as u64;
        }
        if expected_resident != wal.resident {
            return Err(StoreError::Corrupt(format!(
                "wal resident map tracks {} pages but the log holds {} \
                 (bookkeeping out of sync with the record chain)",
                wal.resident.len(),
                expected_resident.len()
            )));
        }
        Ok(WalCheck {
            records,
            resident_pages: expected_resident.len(),
        })
    }

    /// Apply any committed WAL records at `wal_path` to `main_path`, then
    /// delete the WAL.
    fn recover(main_path: &Path, wal_path: &Path) -> Result<()> {
        let Ok(wal) = File::open(wal_path) else {
            return Ok(()); // no WAL: clean shutdown or first open
        };
        let wal_size = wal.metadata()?.len();
        // Scan records; remember page images, applying only up to the last
        // COMMIT.
        let mut committed: HashMap<u32, u64> = HashMap::new(); // page -> payload offset
        let mut pending: HashMap<u32, u64> = HashMap::new();
        let mut offset = 0u64;
        let mut header = [0u8; HEADER_LEN as usize];
        loop {
            if offset + HEADER_LEN > wal_size {
                break; // torn tail
            }
            wal.read_exact_at(&mut header, offset)?;
            let tag = header[0];
            match tag {
                RECORD_COMMIT => {
                    committed.extend(pending.drain());
                    offset += HEADER_LEN;
                }
                RECORD_PAGE => {
                    if offset + HEADER_LEN + PAGE_SIZE as u64 > wal_size {
                        break; // torn page record
                    }
                    // lint:allow(unwrap): slice lengths are fixed
                    let page_id = u32::from_le_bytes(header[1..5].try_into().unwrap());
                    let sum = u64::from_le_bytes(header[5..13].try_into().unwrap()); // lint:allow(unwrap): fixed-size slice
                    let mut payload = vec![0u8; PAGE_SIZE];
                    wal.read_exact_at(&mut payload, offset + HEADER_LEN)?;
                    if checksum(page_id, &payload) != sum {
                        break; // torn/corrupt: stop at the damage
                    }
                    pending.insert(page_id, offset + HEADER_LEN);
                    offset += HEADER_LEN + PAGE_SIZE as u64;
                }
                _ => break, // garbage: stop
            }
        }
        if !committed.is_empty() {
            let main = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(main_path)?;
            let mut payload = vec![0u8; PAGE_SIZE];
            for (&page_id, &payload_offset) in &committed {
                wal.read_exact_at(&mut payload, payload_offset)?;
                main.write_all_at(&payload, u64::from(page_id) * PAGE_SIZE as u64)?;
            }
            main.sync_data()?;
        }
        drop(wal);
        std::fs::remove_file(wal_path)?;
        Ok(())
    }
}

impl Pager for WalPager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if id.is_none() || id.0 >= self.page_count.load(Ordering::Acquire) {
            return Err(StoreError::InvalidPageId(u64::from(id.0)));
        }
        let _rank = lockorder::HeldRank::acquire(lockorder::WAL, "wal");
        let wal = self.wal.lock();
        if let Some(&payload_offset) = wal.resident.get(&id) {
            wal.file.read_exact_at(buf, payload_offset)?;
            return Ok(());
        }
        drop(wal);
        // Fall through to the main file; pages allocated but never written
        // read as zeroes (and may lie beyond both the main pager's count
        // and its file length).
        if id.0 >= self.main.page_count() {
            buf.fill(0);
            return Ok(());
        }
        self.main.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if id.is_none() || id.0 >= self.page_count.load(Ordering::Acquire) {
            return Err(StoreError::InvalidPageId(u64::from(id.0)));
        }
        let _rank = lockorder::HeldRank::acquire(lockorder::WAL, "wal");
        let mut wal = self.wal.lock();
        let mut header = [0u8; HEADER_LEN as usize];
        header[0] = RECORD_PAGE;
        header[1..5].copy_from_slice(&id.0.to_le_bytes());
        header[5..13].copy_from_slice(&checksum(id.0, buf).to_le_bytes());
        let offset = wal.len;
        wal.file.write_all_at(&header, offset)?;
        wal.file.write_all_at(buf, offset + HEADER_LEN)?;
        wal.len = offset + HEADER_LEN + PAGE_SIZE as u64;
        wal.resident.insert(id, offset + HEADER_LEN);
        self.bytes_appended
            .fetch_add(HEADER_LEN + PAGE_SIZE as u64, Ordering::Relaxed);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        // Keep the main pager's counter in sync so ids stay unique, but
        // track our own logical count (the authoritative one).
        let id = self.main.allocate()?;
        self.page_count.fetch_max(id.0 + 1, Ordering::AcqRel);
        Ok(id)
    }

    fn page_count(&self) -> u32 {
        self.page_count.load(Ordering::Acquire)
    }

    fn wal_bytes(&self) -> u64 {
        self.bytes_appended.load(Ordering::Relaxed)
    }

    /// Checkpoint: COMMIT + fsync the WAL (durability point), copy logged
    /// pages into the main file, fsync it, truncate the WAL.
    fn sync(&self) -> Result<()> {
        let _rank = lockorder::HeldRank::acquire(lockorder::WAL, "wal");
        let mut wal = self.wal.lock();
        if wal.resident.is_empty() {
            return Ok(()); // nothing since last checkpoint
        }
        let _span = crate::hooks::HookSpan::enter("wal_checkpoint");
        let mut header = [0u8; HEADER_LEN as usize];
        header[0] = RECORD_COMMIT;
        let offset = wal.len;
        wal.file.write_all_at(&header, offset)?;
        wal.len = offset + HEADER_LEN;
        self.bytes_appended.fetch_add(HEADER_LEN, Ordering::Relaxed);
        wal.file.sync_data()?; // ← durable here

        let mut payload = vec![0u8; PAGE_SIZE];
        for (&page, &payload_offset) in wal.resident.iter() {
            wal.file.read_exact_at(&mut payload, payload_offset)?;
            self.main.write_page(page, &payload)?;
        }
        self.main.sync()?;
        wal.file.set_len(0)?;
        wal.file.sync_data()?;
        wal.len = 0;
        wal.resident.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_base(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fm-store-wal-{}-{name}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let mut w = p.clone().into_os_string();
        w.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(w));
        p
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let mut w = path.as_os_str().to_owned();
        w.push(".wal");
        let _ = std::fs::remove_file(PathBuf::from(w));
    }

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn write_read_round_trip_through_wal() {
        let path = temp_base("roundtrip");
        let pager = WalPager::open(&path).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        pager.write_page(a, &page_of(1)).unwrap();
        pager.write_page(b, &page_of(2)).unwrap();
        // Reads see the WAL-resident versions.
        let mut buf = vec![0u8; PAGE_SIZE];
        pager.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, page_of(1));
        // Overwrite before checkpoint: latest version wins.
        pager.write_page(a, &page_of(9)).unwrap();
        pager.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, page_of(9));
        assert!(pager.wal_len() > 0);
        pager.sync().unwrap();
        assert_eq!(pager.wal_len(), 0);
        pager.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, page_of(9));
        cleanup(&path);
    }

    #[test]
    fn unsynced_writes_do_not_survive_a_crash() {
        let path = temp_base("volatile");
        {
            let pager = WalPager::open(&path).unwrap();
            let a = pager.allocate().unwrap();
            pager.write_page(a, &page_of(1)).unwrap();
            pager.sync().unwrap(); // checkpoint 1
            pager.write_page(a, &page_of(2)).unwrap(); // never committed
                                                       // "Crash": drop without sync. (WalPager has no Drop flush.)
        }
        {
            let pager = WalPager::open(&path).unwrap();
            let mut buf = vec![0u8; PAGE_SIZE];
            pager.read_page(PageId(0), &mut buf).unwrap();
            assert_eq!(buf, page_of(1), "must reopen at the last checkpoint");
        }
        cleanup(&path);
    }

    #[test]
    fn committed_wal_replays_on_open() {
        let path = temp_base("replay");
        let wal_path;
        {
            let pager = WalPager::open(&path).unwrap();
            wal_path = pager.wal_path().to_path_buf();
            let a = pager.allocate().unwrap();
            let b = pager.allocate().unwrap();
            pager.write_page(a, &page_of(7)).unwrap();
            pager.write_page(b, &page_of(8)).unwrap();
            // Simulate a crash *after* the durability point but *before*
            // the copy to main: append COMMIT + fsync manually, then drop.
            let wal = pager.wal.lock();
            let mut header = [0u8; HEADER_LEN as usize];
            header[0] = RECORD_COMMIT;
            wal.file.write_all_at(&header, wal.len).unwrap();
            wal.file.sync_data().unwrap();
        }
        {
            let pager = WalPager::open(&path).unwrap();
            let mut buf = vec![0u8; PAGE_SIZE];
            pager.read_page(PageId(0), &mut buf).unwrap();
            assert_eq!(buf, page_of(7), "committed WAL must be replayed");
            pager.read_page(PageId(1), &mut buf).unwrap();
            assert_eq!(buf, page_of(8));
            assert!(!wal_path.exists() || pager.wal_len() == 0);
        }
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = temp_base("torn");
        {
            let pager = WalPager::open(&path).unwrap();
            let a = pager.allocate().unwrap();
            pager.write_page(a, &page_of(3)).unwrap();
            pager.sync().unwrap();
            pager.write_page(a, &page_of(4)).unwrap();
            // Append COMMIT then corrupt the page record's checksum region:
            // replay must stop at the damage and ignore the commit.
            let wal = pager.wal.lock();
            wal.file.write_all_at(&[0xFF; 8], HEADER_LEN).unwrap(); // clobber payload start
            let mut header = [0u8; HEADER_LEN as usize];
            header[0] = RECORD_COMMIT;
            wal.file.write_all_at(&header, wal.len).unwrap();
            wal.file.sync_data().unwrap();
        }
        {
            let pager = WalPager::open(&path).unwrap();
            let mut buf = vec![0u8; PAGE_SIZE];
            pager.read_page(PageId(0), &mut buf).unwrap();
            assert_eq!(buf, page_of(3), "corrupt record must not be replayed");
        }
        cleanup(&path);
    }

    #[test]
    fn checkpoint_is_atomic_under_simulated_partial_copy() {
        // State: checkpoint 1 = pages {A=1, B=1}. Then {A=2, B=2} committed
        // to WAL, but only A copied to main before the "crash". Recovery
        // must produce {A=2, B=2}, never {A=2, B=1}.
        let path = temp_base("atomic");
        {
            let pager = WalPager::open(&path).unwrap();
            let a = pager.allocate().unwrap();
            let b = pager.allocate().unwrap();
            pager.write_page(a, &page_of(1)).unwrap();
            pager.write_page(b, &page_of(1)).unwrap();
            pager.sync().unwrap();
            pager.write_page(a, &page_of(2)).unwrap();
            pager.write_page(b, &page_of(2)).unwrap();
            // Manual partial checkpoint: COMMIT + fsync, copy only A.
            let wal = pager.wal.lock();
            let mut header = [0u8; HEADER_LEN as usize];
            header[0] = RECORD_COMMIT;
            wal.file.write_all_at(&header, wal.len).unwrap();
            wal.file.sync_data().unwrap();
            pager.main.write_page(a, &page_of(2)).unwrap();
            // Crash here: B never copied.
        }
        {
            let pager = WalPager::open(&path).unwrap();
            let mut buf = vec![0u8; PAGE_SIZE];
            pager.read_page(PageId(0), &mut buf).unwrap();
            assert_eq!(buf, page_of(2));
            pager.read_page(PageId(1), &mut buf).unwrap();
            assert_eq!(buf, page_of(2), "torn checkpoint must be repaired");
        }
        cleanup(&path);
    }

    #[test]
    fn works_under_a_buffer_pool() {
        use crate::buffer::BufferPool;
        let path = temp_base("pool");
        {
            let pool = BufferPool::new(Box::new(WalPager::open(&path).unwrap()), 4);
            // More pages than frames: evictions write through the WAL.
            let ids: Vec<PageId> = (0..12u8)
                .map(|i| {
                    let (id, mut p) = pool.allocate().unwrap();
                    p.fill(i);
                    id
                })
                .collect();
            for (i, &id) in ids.iter().enumerate() {
                let p = pool.get(id).unwrap();
                assert!(p.iter().all(|&b| b == i as u8));
            }
            pool.flush().unwrap(); // checkpoint
        }
        {
            let pool = BufferPool::new(Box::new(WalPager::open(&path).unwrap()), 4);
            for i in 0..12u8 {
                let p = pool.get(PageId(i as u32)).unwrap();
                assert!(p.iter().all(|&b| b == i), "page {i} lost");
            }
        }
        cleanup(&path);
    }

    #[test]
    fn repeated_checkpoints_interleaved_with_writes() {
        let path = temp_base("cycles");
        let pager = WalPager::open(&path).unwrap();
        let a = pager.allocate().unwrap();
        for round in 0u8..20 {
            pager.write_page(a, &page_of(round)).unwrap();
            if round % 3 == 0 {
                pager.sync().unwrap();
            }
        }
        pager.sync().unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        pager.read_page(a, &mut buf).unwrap();
        assert_eq!(buf, page_of(19));
        // Idempotent sync with empty WAL.
        pager.sync().unwrap();
        assert_eq!(pager.wal_len(), 0);
        cleanup(&path);
    }

    #[test]
    fn concurrent_pool_traffic_over_wal() {
        use crate::buffer::BufferPool;
        use std::sync::Arc;
        let path = temp_base("concurrent");
        {
            let pool = Arc::new(BufferPool::new(
                Box::new(WalPager::open(&path).unwrap()),
                8, // tiny pool: constant WAL traffic from evictions
            ));
            let ids: Vec<PageId> = (0..32)
                .map(|i| {
                    let (id, mut p) = pool.allocate().unwrap();
                    p.fill(i as u8);
                    id
                })
                .collect();
            let ids = Arc::new(ids);
            let mut handles = Vec::new();
            for t in 0..4usize {
                let pool = Arc::clone(&pool);
                let ids = Arc::clone(&ids);
                handles.push(std::thread::spawn(move || {
                    for round in 0..100 {
                        let i = (t * 13 + round * 7) % ids.len();
                        let p = pool.get(ids[i]).unwrap();
                        let v = p[0];
                        assert!(p.iter().all(|&b| b == v), "torn page through WAL");
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            pool.flush().unwrap();
        }
        {
            let pool = BufferPool::new(Box::new(WalPager::open(&path).unwrap()), 8);
            for i in 0..32u32 {
                let p = pool.get(PageId(i)).unwrap();
                assert!(p.iter().all(|&b| b == i as u8));
            }
        }
        cleanup(&path);
    }

    #[test]
    fn wal_bytes_is_cumulative_across_checkpoints() {
        let path = temp_base("bytes");
        let pager = WalPager::open(&path).unwrap();
        assert_eq!(pager.wal_bytes(), 0);
        let a = pager.allocate().unwrap();
        pager.write_page(a, &page_of(1)).unwrap();
        let record = HEADER_LEN + PAGE_SIZE as u64;
        assert_eq!(pager.wal_bytes(), record);
        pager.sync().unwrap(); // adds a COMMIT header, truncates the log
        assert_eq!(pager.wal_len(), 0, "live log is truncated");
        assert_eq!(pager.wal_bytes(), record + HEADER_LEN, "counter is not");
        pager.write_page(a, &page_of(2)).unwrap();
        assert_eq!(pager.wal_bytes(), 2 * record + HEADER_LEN);
        cleanup(&path);
    }

    #[test]
    fn check_invariants_accepts_healthy_wal() {
        let path = temp_base("check-ok");
        let pager = WalPager::open(&path).unwrap();
        assert_eq!(
            pager.check_invariants().unwrap(),
            WalCheck {
                records: 0,
                resident_pages: 0
            }
        );
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        pager.write_page(a, &page_of(1)).unwrap();
        pager.write_page(b, &page_of(2)).unwrap();
        pager.write_page(a, &page_of(3)).unwrap(); // page A logged twice
        assert_eq!(
            pager.check_invariants().unwrap(),
            WalCheck {
                records: 3,
                resident_pages: 2
            }
        );
        pager.sync().unwrap();
        assert_eq!(
            pager.check_invariants().unwrap(),
            WalCheck {
                records: 0,
                resident_pages: 0
            }
        );
        cleanup(&path);
    }

    #[test]
    fn check_invariants_detects_corrupt_record() {
        let path = temp_base("check-sum");
        let pager = WalPager::open(&path).unwrap();
        let a = pager.allocate().unwrap();
        pager.write_page(a, &page_of(5)).unwrap();
        // Flip a payload byte on disk without updating the checksum.
        pager
            .wal
            .lock()
            .file
            .write_all_at(&[0xEE], HEADER_LEN + 100)
            .unwrap();
        let err = pager.check_invariants().unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
        cleanup(&path);
    }

    #[test]
    fn check_invariants_detects_torn_tail() {
        let path = temp_base("check-torn");
        let pager = WalPager::open(&path).unwrap();
        let a = pager.allocate().unwrap();
        pager.write_page(a, &page_of(5)).unwrap();
        // Pretend the append offset ran ahead of what was written: the
        // record chain no longer tiles [0, len).
        pager.wal.lock().len += 5;
        let err = pager.check_invariants().unwrap_err();
        assert!(err.to_string().contains("torn"), "got: {err}");
        cleanup(&path);
    }

    #[test]
    fn check_invariants_detects_resident_map_desync() {
        let path = temp_base("check-resident");
        let pager = WalPager::open(&path).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        pager.write_page(a, &page_of(5)).unwrap();
        // Claim page B is resident even though it was never logged.
        pager.wal.lock().resident.insert(b, HEADER_LEN);
        let err = pager.check_invariants().unwrap_err();
        assert!(err.to_string().contains("resident map"), "got: {err}");
        cleanup(&path);
    }

    #[test]
    fn out_of_range_pages_rejected() {
        let path = temp_base("range");
        let pager = WalPager::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(pager.read_page(PageId(0), &mut buf).is_err());
        assert!(pager.write_page(PageId(5), &buf).is_err());
        assert!(pager.read_page(PageId::NONE, &mut buf).is_err());
        cleanup(&path);
    }
}
