//! Order-preserving key encoding for composite index keys.
//!
//! The ETI's clustered index key is the composite
//! `[QGram (string), Coordinate (u8), Column (u8), Chunk (u32)]`; the
//! reference relation's index key is a `u32` tid. Both need byte encodings
//! whose lexicographic order equals the logical order of the composite, so
//! that B+-tree range scans enumerate logically adjacent keys.
//!
//! Strings use terminator-escaping (the scheme popularized by CockroachDB's
//! key encoding): every `0x00` data byte becomes `0x00 0xFF` and the string
//! ends with `0x00 0x01`. Because `0x01 < 0xFF`, a string that is a strict
//! prefix of another sorts first, and no encoded string is a prefix of a
//! different encoded string — which is what makes concatenation of encoded
//! fields order-preserving. Integers are big-endian.

use crate::error::{Result, StoreError};

const ESCAPE: u8 = 0x00;
const ESCAPED_00: u8 = 0xFF;
const TERMINATOR: u8 = 0x01;

/// Append the order-preserving encoding of a byte string.
pub fn encode_bytes(out: &mut Vec<u8>, s: &[u8]) {
    for &b in s {
        if b == ESCAPE {
            out.push(ESCAPE);
            out.push(ESCAPED_00);
        } else {
            out.push(b);
        }
    }
    out.push(ESCAPE);
    out.push(TERMINATOR);
}

/// Append the order-preserving encoding of a UTF-8 string.
pub fn encode_str(out: &mut Vec<u8>, s: &str) {
    encode_bytes(out, s.as_bytes());
}

/// Append a `u8` (single byte, already order-preserving).
pub fn encode_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a big-endian `u32`.
pub fn encode_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u64`.
pub fn encode_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Decode a byte string encoded by [`encode_bytes`] from the front of
/// `input`. Returns the decoded bytes and the remaining input.
pub fn decode_bytes(input: &[u8]) -> Result<(Vec<u8>, &[u8])> {
    let mut out = Vec::new();
    let mut i = 0;
    loop {
        let &b = input
            .get(i)
            .ok_or_else(|| StoreError::Corrupt("unterminated key string".into()))?;
        if b == ESCAPE {
            let &next = input
                .get(i + 1)
                .ok_or_else(|| StoreError::Corrupt("dangling key escape".into()))?;
            match next {
                // lint:allow(panic-path): get(i + 1) above proves i + 2 <= len
                TERMINATOR => return Ok((out, &input[i + 2..])),
                ESCAPED_00 => {
                    out.push(0x00);
                    i += 2;
                }
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "bad key escape byte 0x{other:02x}"
                    )))
                }
            }
        } else {
            out.push(b);
            i += 1;
        }
    }
}

/// Decode a UTF-8 string encoded by [`encode_str`].
pub fn decode_str(input: &[u8]) -> Result<(String, &[u8])> {
    let (bytes, rest) = decode_bytes(input)?;
    let s = String::from_utf8(bytes)
        .map_err(|_| StoreError::Corrupt("key string is not utf-8".into()))?;
    Ok((s, rest))
}

/// Decode a `u8`.
pub fn decode_u8(input: &[u8]) -> Result<(u8, &[u8])> {
    let (&b, rest) = input
        .split_first()
        .ok_or_else(|| StoreError::Corrupt("truncated u8 key field".into()))?;
    Ok((b, rest))
}

/// Decode a big-endian `u32`.
pub fn decode_u32(input: &[u8]) -> Result<(u32, &[u8])> {
    if input.len() < 4 {
        return Err(StoreError::Corrupt("truncated u32 key field".into()));
    }
    let (head, rest) = input.split_at(4);
    let mut buf = [0u8; 4];
    buf.copy_from_slice(head);
    Ok((u32::from_be_bytes(buf), rest))
}

/// Decode a big-endian `u64`.
pub fn decode_u64(input: &[u8]) -> Result<(u64, &[u8])> {
    if input.len() < 8 {
        return Err(StoreError::Corrupt("truncated u64 key field".into()));
    }
    let (head, rest) = input.split_at(8);
    let mut buf = [0u8; 8];
    buf.copy_from_slice(head);
    Ok((u64::from_be_bytes(buf), rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc_str(s: &str) -> Vec<u8> {
        let mut out = Vec::new();
        encode_str(&mut out, s);
        out
    }

    #[test]
    fn string_round_trip() {
        for s in ["", "a", "boeing", "with\0nul", "\0", "\0\0", "ü"] {
            let enc = enc_str(s);
            let (dec, rest) = decode_str(&enc).unwrap();
            assert_eq!(dec, s);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn string_order_preserved() {
        let mut words = vec!["", "a", "aa", "ab", "b", "ba", "z\0", "z\0a", "za"];
        let mut encoded: Vec<Vec<u8>> = words.iter().map(|s| enc_str(s)).collect();
        words.sort_unstable();
        encoded.sort_unstable();
        let decoded: Vec<String> = encoded.iter().map(|e| decode_str(e).unwrap().0).collect();
        assert_eq!(decoded, words);
    }

    #[test]
    fn prefix_sorts_first() {
        assert!(enc_str("abc") < enc_str("abcd"));
        assert!(enc_str("") < enc_str("\0"));
    }

    #[test]
    fn no_encoding_is_prefix_of_another() {
        let words = ["a", "ab", "a\0", "b"];
        for w1 in words {
            for w2 in words {
                if w1 != w2 {
                    let e1 = enc_str(w1);
                    let e2 = enc_str(w2);
                    assert!(!e2.starts_with(&e1), "{w1:?} encoding prefixes {w2:?}");
                }
            }
        }
    }

    #[test]
    fn composite_key_order() {
        // (string, u8, u8, u32) composite: order must be field-major.
        let make = |s: &str, a: u8, b: u8, c: u32| {
            let mut out = Vec::new();
            encode_str(&mut out, s);
            encode_u8(&mut out, a);
            encode_u8(&mut out, b);
            encode_u32(&mut out, c);
            out
        };
        let k1 = make("ing", 1, 0, 0);
        let k2 = make("ing", 1, 0, 1);
        let k3 = make("ing", 1, 1, 0);
        let k4 = make("ing", 2, 0, 0);
        let k5 = make("inga", 0, 0, 0);
        let k6 = make("inh", 0, 0, 0);
        let keys = [&k1, &k2, &k3, &k4, &k5, &k6];
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "composite order violated");
        }
    }

    #[test]
    fn composite_key_round_trip() {
        let mut out = Vec::new();
        encode_str(&mut out, "q\0gram");
        encode_u8(&mut out, 3);
        encode_u8(&mut out, 250);
        encode_u32(&mut out, 0xDEAD_BEEF);
        encode_u64(&mut out, u64::MAX);
        let (s, rest) = decode_str(&out).unwrap();
        let (a, rest) = decode_u8(rest).unwrap();
        let (b, rest) = decode_u8(rest).unwrap();
        let (c, rest) = decode_u32(rest).unwrap();
        let (d, rest) = decode_u64(rest).unwrap();
        assert_eq!(
            (s.as_str(), a, b, c, d),
            ("q\0gram", 3, 250, 0xDEAD_BEEF, u64::MAX)
        );
        assert!(rest.is_empty());
    }

    #[test]
    fn u32_order_preserved() {
        let values = [0u32, 1, 255, 256, 65535, 1 << 20, u32::MAX - 1, u32::MAX];
        for w in values.windows(2) {
            let mut a = Vec::new();
            let mut b = Vec::new();
            encode_u32(&mut a, w[0]);
            encode_u32(&mut b, w[1]);
            assert!(a < b);
        }
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(decode_str(&[]).is_err()); // empty
        assert!(decode_str(b"a").is_err()); // unterminated
        assert!(decode_str(&[0x00]).is_err()); // dangling escape
        assert!(decode_str(&[0x00, 0x42]).is_err()); // bad escape byte
        assert!(decode_u32(&[1, 2, 3]).is_err());
        assert!(decode_u64(&[1, 2, 3, 4, 5, 6, 7]).is_err());
        assert!(decode_u8(&[]).is_err());
        // Invalid UTF-8 under the string decoder.
        let mut enc = Vec::new();
        encode_bytes(&mut enc, &[0xFF, 0xFE]);
        assert!(decode_str(&enc).is_err());
        assert!(decode_bytes(&enc).is_ok());
    }
}
