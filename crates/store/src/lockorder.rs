//! Debug-only runtime verification of the canonical lock order.
//!
//! `cargo xtask analyze` proves statically that every `Mutex`/`RwLock`
//! acquisition respects the declared order (DESIGN.md §8):
//!
//! ```text
//! weights < objects < latch < tail_hint < state < frame-data < wal
//! ```
//!
//! This module is the *runtime* counterpart: each acquisition site declares
//! its rank by constructing a [`HeldRank`] token immediately **before**
//! taking the guard (so the token drops **after** the guard it covers), and
//! under `debug_assertions` a thread-local stack asserts that ranks are
//! strictly increasing per thread. The two must agree — the multi-threaded
//! lookup/insert test in `tests/tests/concurrency.rs` drives real queries
//! and maintenance through every tracked lock and fails if the statically
//! declared order is not the one actually taken.
//!
//! Per-frame `data` latches are tracked only where the miss protocol holds
//! exactly **one** of them — the fault-in write latch and the flush
//! write-back read latch ([`FRAME`]). The B-tree descent path deliberately
//! stays untracked: a split legitimately latches parent and child at once,
//! and a rank per frame would force a global frame order the clock
//! eviction scheme does not need (see DESIGN.md §8 for the pin-count
//! argument). Also untracked: `MemPager::pages` (a leaf below every
//! tracked rank) and `FuzzyMatcher::weights_snapshot`, whose guard escapes
//! to the caller and outlives any token scoped here.
//!
//! In release builds everything compiles to nothing.

/// Ranks, outermost first, spaced for future insertions.
pub const WEIGHTS: u16 = 10;
pub const OBJECTS: u16 = 20;
pub const LATCH: u16 = 30;
pub const TAIL_HINT: u16 = 40;
pub const STATE: u16 = 50;
/// The single-frame `data` latch windows of the buffer-pool miss/flush
/// protocol only — never the multi-frame descent path.
pub const FRAME: u16 = 55;
pub const WAL: u16 = 60;

#[cfg(debug_assertions)]
mod imp {
    use std::cell::RefCell;

    thread_local! {
        /// The `(rank, name)` stack of tracked locks this thread holds.
        static HELD: RefCell<Vec<(u16, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    pub fn push(rank: u16, name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top, top_name)) = held.last() {
                assert!(
                    top < rank,
                    "lock-order violation: acquiring `{name}` (rank {rank}) while \
                     holding `{top_name}` (rank {top}); the canonical order is \
                     weights < objects < latch < tail_hint < state < frame-data \
                     < wal (DESIGN.md §8)"
                );
            }
            held.push((rank, name));
        });
    }

    pub fn pop(rank: u16) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(r, _)| r == rank) {
                held.remove(pos);
            }
        });
    }
}

/// RAII witness of one tracked lock acquisition. Construct it on the line
/// *before* the guard it covers:
///
/// ```ignore
/// let _rank = lockorder::HeldRank::acquire(lockorder::STATE, "state");
/// let mut st = self.state.lock();
/// ```
///
/// Declared first, it drops last — the rank outlives the guard by a hair,
/// which over-approximates the hold window and can never mask a violation.
pub struct HeldRank {
    #[cfg(debug_assertions)]
    rank: u16,
}

impl HeldRank {
    #[inline]
    #[must_use = "dropping the token immediately stops tracking the guard it covers"]
    pub fn acquire(rank: u16, name: &'static str) -> HeldRank {
        #[cfg(debug_assertions)]
        {
            imp::push(rank, name);
            HeldRank { rank }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (rank, name);
            HeldRank {}
        }
    }
}

impl Drop for HeldRank {
    #[inline]
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        imp::pop(self.rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_ranks_are_accepted() {
        let _a = HeldRank::acquire(OBJECTS, "objects");
        let _b = HeldRank::acquire(LATCH, "latch");
        let _c = HeldRank::acquire(STATE, "state");
    }

    #[test]
    fn frame_rank_sits_between_state_and_wal() {
        // The miss protocol: shard state, then one frame latch, then the
        // WAL inside the write-back.
        let _a = HeldRank::acquire(STATE, "state");
        let _b = HeldRank::acquire(FRAME, "frame-data");
        let _c = HeldRank::acquire(WAL, "wal");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn state_under_frame_is_rejected() {
        // Publishing without dropping the frame token first must assert —
        // the runtime twin of the static `latch-protocol` inversion rule.
        let result = std::panic::catch_unwind(|| {
            let _a = HeldRank::acquire(FRAME, "frame-data");
            let _b = HeldRank::acquire(STATE, "state");
        });
        assert!(
            result.is_err(),
            "re-taking state under a frame latch must assert"
        );
        imp::pop(FRAME);
        imp::pop(STATE);
    }

    #[test]
    fn release_reopens_the_rank() {
        {
            let _a = HeldRank::acquire(STATE, "state");
        }
        let _b = HeldRank::acquire(OBJECTS, "objects");
        let _c = HeldRank::acquire(STATE, "state");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn reversed_ranks_are_rejected() {
        let result = std::panic::catch_unwind(|| {
            let _a = HeldRank::acquire(WAL, "wal");
            let _b = HeldRank::acquire(WEIGHTS, "weights");
        });
        assert!(result.is_err(), "acquiring weights under wal must assert");
        // The panic unwound past the drops; clear this thread's stack so
        // other tests on the same thread start clean.
        imp::pop(WAL);
        imp::pop(WEIGHTS);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_rank_reacquisition_is_rejected() {
        let result = std::panic::catch_unwind(|| {
            let _a = HeldRank::acquire(LATCH, "latch");
            let _b = HeldRank::acquire(LATCH, "latch");
        });
        assert!(result.is_err(), "same-rank nesting is a self-deadlock");
        imp::pop(LATCH);
        imp::pop(LATCH);
    }
}
