//! Heap files: unordered collections of variable-length records.
//!
//! A heap file is a chain of [`PageType::Heap`] pages linked through the
//! page header's `next_page` field. Records are addressed by [`Rid`]
//! (page id + slot) — slot ids are stable for the life of the record, so a
//! `Rid` stored in an index (the reference relation's tid index, the ETI's
//! chunk records) stays valid until the record is deleted.
//!
//! Records must fit in one page ([`crate::page::MAX_RECORD`] bytes); larger
//! logical values are chunked by the layer above, exactly as the ETI chunks
//! its tid-lists.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::error::{Result, StoreError};
use crate::lockorder;
use crate::page::{PageId, PageType, SlottedPage, SlottedPageMut};

/// Record identifier: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    pub page: PageId,
    pub slot: u16,
}

impl Rid {
    /// Pack into a u64 for storage inside index values.
    pub fn to_u64(self) -> u64 {
        (u64::from(self.page.0) << 16) | u64::from(self.slot)
    }

    /// Unpack from [`Rid::to_u64`].
    pub fn from_u64(v: u64) -> Rid {
        Rid {
            page: PageId((v >> 16) as u32),
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// A heap file over a buffer pool.
///
/// Inserts go to the tail page (a hint protected by a mutex); when the
/// record does not fit, a new page is chained. Concurrent readers are
/// unrestricted; concurrent inserters serialize on the tail.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    first_page: PageId,
    tail_hint: Arc<Mutex<PageId>>,
}

impl HeapFile {
    /// Create a new heap file, allocating its first page.
    pub fn create(pool: Arc<BufferPool>) -> Result<HeapFile> {
        let first = {
            let (id, mut page) = pool.allocate()?;
            SlottedPageMut::new(&mut page).init(PageType::Heap);
            id
        };
        Ok(HeapFile {
            pool,
            first_page: first,
            tail_hint: Arc::new(Mutex::new(first)),
        })
    }

    /// Open an existing heap file rooted at `first_page`.
    ///
    /// The tail hint starts at the first page and advances lazily on the
    /// first insert.
    pub fn open(pool: Arc<BufferPool>, first_page: PageId) -> HeapFile {
        HeapFile {
            pool,
            first_page,
            tail_hint: Arc::new(Mutex::new(first_page)),
        }
    }

    /// A second handle onto the same heap file, sharing the pool and the
    /// tail hint, so inserts through any handle serialize on one tail.
    #[must_use]
    pub fn clone_handle(&self) -> HeapFile {
        HeapFile {
            pool: Arc::clone(&self.pool),
            first_page: self.first_page,
            tail_hint: Arc::clone(&self.tail_hint),
        }
    }

    /// The id of the first page (persist this to reopen the file).
    pub fn first_page(&self) -> PageId {
        self.first_page
    }

    /// Insert a record, returning its stable [`Rid`].
    pub fn insert(&self, record: &[u8]) -> Result<Rid> {
        let _rank = lockorder::HeldRank::acquire(lockorder::TAIL_HINT, "tail_hint");
        let mut tail = self.tail_hint.lock();
        loop {
            // Walk to the true tail from the hint.
            let next = {
                let page = self.pool.get(*tail)?;
                SlottedPage::new(&page).next_page()
            };
            if next.is_none() {
                break;
            }
            *tail = next;
        }
        // Try the tail page.
        {
            let mut page = self.pool.get_mut(*tail)?;
            let mut sp = SlottedPageMut::new(&mut page);
            match sp.push(record) {
                Ok(slot) => return Ok(Rid { page: *tail, slot }),
                Err(StoreError::RecordTooLarge { .. }) => {} // fall through
                Err(e) => return Err(e),
            }
        }
        // Chain a new page. (Records larger than a page are rejected by the
        // fresh page's push below.)
        let new_id = {
            let (id, mut page) = self.pool.allocate()?;
            SlottedPageMut::new(&mut page).init(PageType::Heap);
            id
        };
        {
            let mut page = self.pool.get_mut(*tail)?;
            SlottedPageMut::new(&mut page).set_next_page(new_id);
        }
        *tail = new_id;
        let mut page = self.pool.get_mut(new_id)?;
        let slot = SlottedPageMut::new(&mut page).push(record)?;
        Ok(Rid { page: new_id, slot })
    }

    /// Fetch the record at `rid`. Returns `NotFound` for dead or absent
    /// slots.
    pub fn get(&self, rid: Rid) -> Result<Vec<u8>> {
        let page = self.pool.get(rid.page)?;
        let sp = SlottedPage::new(&page);
        if sp.page_type()? != PageType::Heap {
            return Err(StoreError::Corrupt(format!("{rid}: not a heap page")));
        }
        sp.get(rid.slot)
            .map(|c| c.to_vec())
            .ok_or_else(|| StoreError::NotFound(format!("record {rid}")))
    }

    /// Delete the record at `rid` (idempotent).
    pub fn delete(&self, rid: Rid) -> Result<()> {
        let mut page = self.pool.get_mut(rid.page)?;
        SlottedPageMut::new(&mut page).mark_deleted(rid.slot);
        Ok(())
    }

    /// Iterate over all live records as `(Rid, bytes)` pairs, in page order.
    ///
    /// The scan copies one page's records at a time, so it never holds a
    /// page pin across yields; concurrent inserts to later pages are
    /// observed, deletes of not-yet-visited records are observed.
    pub fn scan(&self) -> HeapScan<'_> {
        HeapScan {
            heap: self,
            next_page: self.first_page,
            current: Vec::new().into_iter(),
        }
    }

    fn load_page_records(&self, id: PageId) -> Result<(Vec<RecordEntry>, PageId)> {
        let page = self.pool.get(id)?;
        let sp = SlottedPage::new(&page);
        let records = sp
            .iter()
            .map(|(slot, cell)| (Rid { page: id, slot }, cell.to_vec()))
            .collect();
        Ok((records, sp.next_page()))
    }

    /// Validate the heap file's structural invariants and return a summary:
    /// every chained page is a [`PageType::Heap`] page with a sound slotted
    /// layout ([`SlottedPage::check_invariants`]), and the chain is acyclic
    /// (terminates at [`PageId::NONE`] without revisiting a page).
    pub fn check_invariants(&self) -> Result<HeapCheck> {
        let mut visited = std::collections::HashSet::new();
        let mut check = HeapCheck {
            pages: 0,
            live_records: 0,
            dead_slots: 0,
        };
        let mut id = self.first_page;
        while !id.is_none() {
            if !visited.insert(id) {
                return Err(StoreError::Corrupt(format!(
                    "heap page chain revisits {id} (cycle)"
                )));
            }
            let page = self.pool.get(id)?;
            let sp = SlottedPage::new(&page);
            sp.check_invariants()
                .map_err(|e| StoreError::Corrupt(format!("heap page {id}: {e}")))?;
            if sp.page_type()? != PageType::Heap {
                return Err(StoreError::Corrupt(format!(
                    "page {id} in heap chain has type {:?}",
                    sp.page_type()?
                )));
            }
            let live = sp.iter().count();
            check.pages += 1;
            check.live_records += live;
            check.dead_slots += sp.slot_count() as usize - live;
            id = sp.next_page();
        }
        Ok(check)
    }
}

/// Structural summary returned by [`HeapFile::check_invariants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapCheck {
    pub pages: usize,
    pub live_records: usize,
    /// Slots marked deleted but still occupying directory entries (their
    /// ids are reserved forever — see the module docs).
    pub dead_slots: usize,
}

/// One scanned record: its rid and bytes.
type RecordEntry = (Rid, Vec<u8>);

/// Iterator over the live records of a heap file.
pub struct HeapScan<'a> {
    heap: &'a HeapFile,
    next_page: PageId,
    current: std::vec::IntoIter<RecordEntry>,
}

impl Iterator for HeapScan<'_> {
    type Item = Result<(Rid, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.current.next() {
                return Some(Ok(item));
            }
            if self.next_page.is_none() {
                return None;
            }
            match self.heap.load_page_records(self.next_page) {
                Ok((records, next)) => {
                    self.next_page = next;
                    self.current = records.into_iter();
                }
                Err(e) => {
                    self.next_page = PageId::NONE;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Box::new(MemPager::new()), 16))
    }

    #[test]
    fn rid_u64_round_trip() {
        for rid in [
            Rid {
                page: PageId(0),
                slot: 0,
            },
            Rid {
                page: PageId(123),
                slot: 456,
            },
            Rid {
                page: PageId(u32::MAX - 1),
                slot: u16::MAX,
            },
        ] {
            assert_eq!(Rid::from_u64(rid.to_u64()), rid);
        }
    }

    #[test]
    fn insert_get_round_trip() {
        let heap = HeapFile::create(pool()).unwrap();
        let r1 = heap.insert(b"alpha").unwrap();
        let r2 = heap.insert(b"beta").unwrap();
        assert_eq!(heap.get(r1).unwrap(), b"alpha");
        assert_eq!(heap.get(r2).unwrap(), b"beta");
    }

    #[test]
    fn spills_to_multiple_pages() {
        let heap = HeapFile::create(pool()).unwrap();
        let record = vec![5u8; 3000];
        let rids: Vec<Rid> = (0..10).map(|_| heap.insert(&record).unwrap()).collect();
        let pages: std::collections::HashSet<PageId> = rids.iter().map(|r| r.page).collect();
        assert!(
            pages.len() >= 4,
            "expected multiple pages, got {}",
            pages.len()
        );
        for rid in rids {
            assert_eq!(heap.get(rid).unwrap(), record);
        }
    }

    #[test]
    fn record_larger_than_page_rejected() {
        let heap = HeapFile::create(pool()).unwrap();
        let record = vec![1u8; crate::page::MAX_RECORD + 1];
        assert!(matches!(
            heap.insert(&record),
            Err(StoreError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn delete_then_get_fails_but_others_live() {
        let heap = HeapFile::create(pool()).unwrap();
        let a = heap.insert(b"a").unwrap();
        let b = heap.insert(b"b").unwrap();
        heap.delete(a).unwrap();
        assert!(matches!(heap.get(a), Err(StoreError::NotFound(_))));
        assert_eq!(heap.get(b).unwrap(), b"b");
        // Idempotent delete.
        heap.delete(a).unwrap();
    }

    #[test]
    fn scan_visits_all_live_records_in_order() {
        let heap = HeapFile::create(pool()).unwrap();
        let mut expect = Vec::new();
        for i in 0..500u32 {
            let rec = format!("record-{i:04}").into_bytes();
            let rid = heap.insert(&rec).unwrap();
            expect.push((rid, rec));
        }
        heap.delete(expect[100].0).unwrap();
        heap.delete(expect[250].0).unwrap();
        expect.remove(250);
        expect.remove(100);
        let got: Vec<(Rid, Vec<u8>)> = heap.scan().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn scan_empty_heap() {
        let heap = HeapFile::create(pool()).unwrap();
        assert_eq!(heap.scan().count(), 0);
    }

    #[test]
    fn reopen_heap_by_first_page() {
        let pool = pool();
        let first;
        let rid;
        {
            let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
            first = heap.first_page();
            rid = heap.insert(b"persisted").unwrap();
        }
        let heap = HeapFile::open(pool, first);
        assert_eq!(heap.get(rid).unwrap(), b"persisted");
        // Inserts continue after reopen.
        let rid2 = heap.insert(b"more").unwrap();
        assert_eq!(heap.get(rid2).unwrap(), b"more");
    }

    #[test]
    fn concurrent_inserts_do_not_lose_records() {
        use std::sync::Arc as SArc;
        let heap = SArc::new(HeapFile::create(pool()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let heap = SArc::clone(&heap);
            handles.push(std::thread::spawn(move || {
                (0..200)
                    .map(|i| {
                        let rec = format!("t{t}-r{i}").into_bytes();
                        (heap.insert(&rec).unwrap(), rec)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<(Rid, Vec<u8>)> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        // Every rid readable with the right contents; all rids distinct.
        let mut rids: Vec<Rid> = all.iter().map(|(r, _)| *r).collect();
        rids.sort_unstable();
        rids.dedup();
        assert_eq!(rids.len(), 800);
        for (rid, rec) in &all {
            assert_eq!(&heap.get(*rid).unwrap(), rec);
        }
        assert_eq!(heap.scan().count(), 800);
    }

    #[test]
    fn check_invariants_accepts_healthy_heap() {
        let pool = pool();
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        let c = heap.check_invariants().unwrap();
        assert_eq!(
            c,
            HeapCheck {
                pages: 1,
                live_records: 0,
                dead_slots: 0
            }
        );
        let record = vec![5u8; 3000];
        let rids: Vec<Rid> = (0..10).map(|_| heap.insert(&record).unwrap()).collect();
        heap.delete(rids[3]).unwrap();
        heap.delete(rids[7]).unwrap();
        let c = heap.check_invariants().unwrap();
        assert!(c.pages >= 4);
        assert_eq!(c.live_records, 8);
        assert_eq!(c.dead_slots, 2);
    }

    #[test]
    fn check_invariants_detects_chain_cycle() {
        let pool = pool();
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        let record = vec![5u8; 3000];
        for _ in 0..10 {
            heap.insert(&record).unwrap();
        }
        // Loop the second page back to the first.
        let second = {
            let page = pool.get(heap.first_page()).unwrap();
            SlottedPage::new(&page).next_page()
        };
        {
            let mut page = pool.get_mut(second).unwrap();
            SlottedPageMut::new(&mut page).set_next_page(heap.first_page());
        }
        let err = heap.check_invariants().unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn check_invariants_detects_foreign_page_in_chain() {
        let pool = pool();
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        heap.insert(b"x").unwrap();
        let (other, mut page) = pool.allocate().unwrap();
        SlottedPageMut::new(&mut page).init(PageType::BTreeLeaf);
        drop(page);
        {
            let mut page = pool.get_mut(heap.first_page()).unwrap();
            SlottedPageMut::new(&mut page).set_next_page(other);
        }
        let err = heap.check_invariants().unwrap_err();
        assert!(err.to_string().contains("has type"), "{err}");
    }

    #[test]
    fn get_on_non_heap_page_is_corrupt() {
        let pool = pool();
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        let _ = heap.insert(b"x").unwrap();
        // Allocate a page that is NOT a heap page and poke at it.
        let (other, mut page) = pool.allocate().unwrap();
        SlottedPageMut::new(&mut page).init(PageType::BTreeLeaf);
        drop(page);
        assert!(matches!(
            heap.get(Rid {
                page: other,
                slot: 0
            }),
            Err(StoreError::Corrupt(_))
        ));
    }
}
