//! Typed schemas, values and row codecs.
//!
//! The paper's relations are narrow and string-heavy
//! (`R[tid, A1, …, An]` with varchar columns; the ETI has two small
//! integers, a counter and a blob of tids), so the type system is
//! deliberately small: text, unsigned integers, raw bytes, and NULL —
//! NULLs matter because the paper's error model injects missing values and
//! the ETI stores NULL tid-lists for stop q-grams.
//!
//! Row encoding: a null bitmap followed by the non-null column values;
//! variable-length values carry a `u32` length prefix, integers are
//! fixed-width little-endian.

use crate::error::{Result, StoreError};

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// UTF-8 string (`varchar`).
    Text,
    /// 32-bit unsigned integer (tids, frequencies, coordinates).
    U32,
    /// 64-bit unsigned integer.
    U64,
    /// Raw bytes (the ETI's packed tid-lists).
    Bytes,
}

impl ColumnType {
    fn code(self) -> u8 {
        match self {
            ColumnType::Text => 0,
            ColumnType::U32 => 1,
            ColumnType::U64 => 2,
            ColumnType::Bytes => 3,
        }
    }

    fn from_code(c: u8) -> Result<ColumnType> {
        Ok(match c {
            0 => ColumnType::Text,
            1 => ColumnType::U32,
            2 => ColumnType::U64,
            3 => ColumnType::Bytes,
            other => return Err(StoreError::Corrupt(format!("bad column type {other}"))),
        })
    }
}

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
    pub nullable: bool,
}

/// A table schema: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from `(name, type, nullable)` triples.
    pub fn new(columns: Vec<(&str, ColumnType, bool)>) -> Schema {
        Schema {
            columns: columns
                .into_iter()
                .map(|(name, ty, nullable)| ColumnDef {
                    name: name.to_string(),
                    ty,
                    nullable,
                })
                .collect(),
        }
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validate a row against this schema.
    pub fn check(&self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(StoreError::SchemaMismatch(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (value, col) in row.iter().zip(&self.columns) {
            match value {
                Value::Null if !col.nullable => {
                    return Err(StoreError::SchemaMismatch(format!(
                        "null in non-nullable column {}",
                        col.name
                    )))
                }
                Value::Null => {}
                v if v.column_type() != Some(col.ty) => {
                    return Err(StoreError::SchemaMismatch(format!(
                        "column {} expects {:?}, got {v:?}",
                        col.name, col.ty
                    )))
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Serialize the schema (used by the catalog).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.columns.len() as u16).to_le_bytes());
        for col in &self.columns {
            let name = col.name.as_bytes();
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
            out.push(col.ty.code());
            out.push(u8::from(col.nullable));
        }
        out
    }

    /// Deserialize a schema written by [`Schema::encode`].
    pub fn decode(mut input: &[u8]) -> Result<Schema> {
        let take = |input: &mut &[u8], n: usize| -> Result<Vec<u8>> {
            if input.len() < n {
                return Err(StoreError::Corrupt("truncated schema".into()));
            }
            let (head, rest) = input.split_at(n);
            *input = rest;
            Ok(head.to_vec())
        };
        let n = u16::from_le_bytes(arr(&take(&mut input, 2)?)?) as usize;
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            let name_len = u16::from_le_bytes(arr(&take(&mut input, 2)?)?) as usize;
            let name = String::from_utf8(take(&mut input, name_len)?)
                .map_err(|_| StoreError::Corrupt("schema name not utf-8".into()))?;
            let ty = ColumnType::from_code(take(&mut input, 1)?[0])?;
            let nullable = take(&mut input, 1)?[0] != 0;
            columns.push(ColumnDef { name, ty, nullable });
        }
        Ok(Schema { columns })
    }
}

/// Exact-`N` slice → array as a corruption error rather than a panic;
/// cannot fire after a successful `take(N)`.
fn arr<const N: usize>(bytes: &[u8]) -> Result<[u8; N]> {
    bytes
        .try_into()
        .map_err(|_| StoreError::Corrupt("bad fixed-width field".into()))
}

/// A typed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Null,
    Text(String),
    U32(u32),
    U64(u64),
    Bytes(Vec<u8>),
}

impl Value {
    fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Text(_) => Some(ColumnType::Text),
            Value::U32(_) => Some(ColumnType::U32),
            Value::U64(_) => Some(ColumnType::U64),
            Value::Bytes(_) => Some(ColumnType::Bytes),
        }
    }

    /// The text content, or `None` for NULL. Errors on non-text values are
    /// the caller's lookout (`as_text` on a `U32` is a logic bug → panic in
    /// debug via `expect` at call sites that require text).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::U32(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A row: one value per schema column.
pub type Row = Vec<Value>;

/// Encode a row under `schema`. The row must satisfy [`Schema::check`].
pub fn encode_row(schema: &Schema, row: &Row) -> Result<Vec<u8>> {
    schema.check(row)?;
    let bitmap_len = schema.arity().div_ceil(8);
    let mut out = vec![0u8; bitmap_len];
    for (i, value) in row.iter().enumerate() {
        if value.is_null() {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    for value in row {
        match value {
            Value::Null => {}
            Value::Text(s) => {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::U32(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::U64(v) => out.extend_from_slice(&v.to_le_bytes()),
        }
    }
    Ok(out)
}

/// Decode a row encoded by [`encode_row`].
pub fn decode_row(schema: &Schema, mut input: &[u8]) -> Result<Row> {
    let bitmap_len = schema.arity().div_ceil(8);
    if input.len() < bitmap_len {
        return Err(StoreError::Corrupt("row shorter than null bitmap".into()));
    }
    let (bitmap, rest) = input.split_at(bitmap_len);
    input = rest;
    let mut take = |n: usize| -> Result<&[u8]> {
        if input.len() < n {
            return Err(StoreError::Corrupt("truncated row".into()));
        }
        let (head, rest) = input.split_at(n);
        input = rest;
        Ok(head)
    };
    let mut row = Vec::with_capacity(schema.arity());
    for (i, col) in schema.columns().iter().enumerate() {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            row.push(Value::Null);
            continue;
        }
        let value = match col.ty {
            ColumnType::Text => {
                let len = u32::from_le_bytes(arr(take(4)?)?) as usize;
                let bytes = take(len)?;
                Value::Text(
                    String::from_utf8(bytes.to_vec())
                        .map_err(|_| StoreError::Corrupt("text value not utf-8".into()))?,
                )
            }
            ColumnType::Bytes => {
                let len = u32::from_le_bytes(arr(take(4)?)?) as usize;
                Value::Bytes(take(len)?.to_vec())
            }
            ColumnType::U32 => Value::U32(u32::from_le_bytes(arr(take(4)?)?)),
            ColumnType::U64 => Value::U64(u64::from_le_bytes(arr(take(8)?)?)),
        };
        row.push(value);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer_schema() -> Schema {
        Schema::new(vec![
            ("tid", ColumnType::U32, false),
            ("name", ColumnType::Text, false),
            ("city", ColumnType::Text, true),
            ("state", ColumnType::Text, true),
            ("zip", ColumnType::Text, true),
        ])
    }

    #[test]
    fn row_round_trip() {
        let schema = customer_schema();
        let row: Row = vec![
            Value::U32(1),
            Value::Text("Boeing Company".into()),
            Value::Text("Seattle".into()),
            Value::Text("WA".into()),
            Value::Text("98004".into()),
        ];
        let enc = encode_row(&schema, &row).unwrap();
        assert_eq!(decode_row(&schema, &enc).unwrap(), row);
    }

    #[test]
    fn null_round_trip() {
        let schema = customer_schema();
        let row: Row = vec![
            Value::U32(4),
            Value::Text("Company Beoing".into()),
            Value::Text("Seattle".into()),
            Value::Null, // the paper's I4 has a NULL state
            Value::Text("98014".into()),
        ];
        let enc = encode_row(&schema, &row).unwrap();
        let dec = decode_row(&schema, &enc).unwrap();
        assert_eq!(dec, row);
        assert!(dec[3].is_null());
    }

    #[test]
    fn all_types_round_trip() {
        let schema = Schema::new(vec![
            ("t", ColumnType::Text, true),
            ("a", ColumnType::U32, true),
            ("b", ColumnType::U64, true),
            ("raw", ColumnType::Bytes, true),
        ]);
        let row: Row = vec![
            Value::Text("".into()),
            Value::U32(u32::MAX),
            Value::U64(u64::MAX),
            Value::Bytes(vec![0, 255, 0, 1]),
        ];
        let enc = encode_row(&schema, &row).unwrap();
        assert_eq!(decode_row(&schema, &enc).unwrap(), row);
        let nulls: Row = vec![Value::Null, Value::Null, Value::Null, Value::Null];
        let enc = encode_row(&schema, &nulls).unwrap();
        assert_eq!(decode_row(&schema, &enc).unwrap(), nulls);
    }

    #[test]
    fn wide_schema_bitmap() {
        // More than 8 columns exercises the multi-byte null bitmap.
        let cols: Vec<(String, ColumnType, bool)> = (0..12)
            .map(|i| (format!("c{i}"), ColumnType::U32, true))
            .collect();
        let schema = Schema {
            columns: cols
                .into_iter()
                .map(|(name, ty, nullable)| ColumnDef { name, ty, nullable })
                .collect(),
        };
        let row: Row = (0..12)
            .map(|i| {
                if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::U32(i)
                }
            })
            .collect();
        let enc = encode_row(&schema, &row).unwrap();
        assert_eq!(decode_row(&schema, &enc).unwrap(), row);
    }

    #[test]
    fn schema_mismatches_rejected() {
        let schema = customer_schema();
        // Wrong arity.
        assert!(matches!(
            encode_row(&schema, &vec![Value::U32(1)]),
            Err(StoreError::SchemaMismatch(_))
        ));
        // Null in non-nullable column.
        let row: Row = vec![
            Value::Null,
            Value::Text("x".into()),
            Value::Null,
            Value::Null,
            Value::Null,
        ];
        assert!(matches!(
            encode_row(&schema, &row),
            Err(StoreError::SchemaMismatch(_))
        ));
        // Wrong type.
        let row: Row = vec![
            Value::Text("not a u32".into()),
            Value::Text("x".into()),
            Value::Null,
            Value::Null,
            Value::Null,
        ];
        assert!(matches!(
            encode_row(&schema, &row),
            Err(StoreError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn truncated_row_detected() {
        let schema = customer_schema();
        let row: Row = vec![
            Value::U32(1),
            Value::Text("Boeing".into()),
            Value::Null,
            Value::Null,
            Value::Null,
        ];
        let enc = encode_row(&schema, &row).unwrap();
        for cut in [0, 1, enc.len() - 1] {
            assert!(decode_row(&schema, &enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn schema_encode_decode_round_trip() {
        let schema = customer_schema();
        let enc = schema.encode();
        let dec = Schema::decode(&enc).unwrap();
        assert_eq!(dec, schema);
        assert_eq!(dec.column_index("zip"), Some(4));
        assert_eq!(dec.column_index("missing"), None);
    }

    #[test]
    fn schema_decode_rejects_garbage() {
        assert!(Schema::decode(&[]).is_err());
        assert!(Schema::decode(&[9, 0, 1]).is_err());
    }
}
