//! External merge sort.
//!
//! The paper builds the ETI by writing a *pre-ETI* relation and running
//! "select … from pre-ETI **order by** QGram, Coordinate, Column, Tid",
//! explicitly because "the combined size of all tid-lists is usually larger
//! than the amount of available main memory" (§4.2). This module is that
//! ORDER BY: records accumulate in a bounded in-memory buffer, overflowing
//! buffers are sorted and spilled as runs to temporary files, and
//! [`ExternalSorter::finish`] k-way-merges the runs with a binary heap.
//!
//! Records are opaque byte strings compared lexicographically — callers
//! encode their sort key order-preservingly at the front (see
//! [`crate::keycode`]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

use crate::error::{Result, StoreError};
use crate::hooks::HookSpan;

/// Default in-memory buffer budget: 64 MiB.
pub const DEFAULT_MEMORY_BUDGET: usize = 64 << 20;

/// Sorts an unbounded stream of byte records with bounded memory.
pub struct ExternalSorter {
    budget: usize,
    buffered_bytes: usize,
    buffer: Vec<Vec<u8>>,
    runs: Vec<PathBuf>,
    tmp_dir: PathBuf,
    run_counter: usize,
    /// Total records pushed (exposed for build statistics).
    record_count: u64,
}

impl ExternalSorter {
    /// A sorter spilling to the system temp directory with the default
    /// budget.
    pub fn new() -> Result<ExternalSorter> {
        Self::with_budget(DEFAULT_MEMORY_BUDGET)
    }

    /// A sorter with an explicit memory budget in bytes. Tiny budgets are
    /// honored (every record spills), which is how the spill path is tested.
    pub fn with_budget(budget: usize) -> Result<ExternalSorter> {
        let mut tmp_dir = std::env::temp_dir();
        // Unique per-process per-sorter directory.
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        tmp_dir.push(format!("fm-extsort-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&tmp_dir)?;
        Ok(ExternalSorter {
            budget: budget.max(1),
            buffered_bytes: 0,
            buffer: Vec::new(),
            runs: Vec::new(),
            tmp_dir,
            run_counter: 0,
            record_count: 0,
        })
    }

    /// Number of records pushed so far.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Number of runs spilled to disk so far.
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    /// Add a record.
    pub fn push(&mut self, record: &[u8]) -> Result<()> {
        self.buffered_bytes += record.len() + std::mem::size_of::<Vec<u8>>();
        self.buffer.push(record.to_vec());
        self.record_count += 1;
        if self.buffered_bytes >= self.budget {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let _span = HookSpan::enter("extsort_spill");
        self.buffer.sort_unstable();
        let path = self.tmp_dir.join(format!("run-{:06}", self.run_counter));
        self.run_counter += 1;
        let mut w = BufWriter::new(File::create(&path)?);
        for rec in &self.buffer {
            w.write_all(&(rec.len() as u32).to_le_bytes())?;
            w.write_all(rec)?;
        }
        w.flush()?;
        self.runs.push(path);
        self.buffer.clear();
        self.buffered_bytes = 0;
        Ok(())
    }

    /// Sort everything and return an iterator over records in ascending
    /// order. Consumes the sorter; temp files are deleted when the returned
    /// iterator is dropped.
    pub fn finish(mut self) -> Result<SortedRun> {
        let _span = HookSpan::enter("extsort_merge_open");
        // The final in-memory buffer becomes the last "run" without touching
        // disk.
        self.buffer.sort_unstable();
        let mem_run = std::mem::take(&mut self.buffer);
        let mut readers = Vec::with_capacity(self.runs.len());
        for path in &self.runs {
            readers.push(RunReader::open(path.clone())?);
        }
        let mut heap = BinaryHeap::with_capacity(readers.len() + 1);
        let mut sources: Vec<Source> = readers.into_iter().map(Source::File).collect();
        sources.push(Source::Memory(mem_run.into_iter()));
        for (i, src) in sources.iter_mut().enumerate() {
            if let Some(rec) = src.next_record()? {
                heap.push(Reverse((rec, i)));
            }
        }
        Ok(SortedRun {
            heap,
            sources,
            _cleanup: TempDirGuard(std::mem::replace(&mut self.tmp_dir, PathBuf::new())),
        })
    }
}

impl Drop for ExternalSorter {
    fn drop(&mut self) {
        // If finish() was never called, clean up any spilled runs.
        if !self.tmp_dir.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.tmp_dir);
        }
    }
}

/// Deletes the sorter's temp directory on drop.
struct TempDirGuard(PathBuf);

impl Drop for TempDirGuard {
    fn drop(&mut self) {
        if !self.0.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

struct RunReader {
    reader: BufReader<File>,
}

impl RunReader {
    fn open(path: PathBuf) -> Result<RunReader> {
        Ok(RunReader {
            reader: BufReader::new(File::open(path)?),
        })
    }

    fn next_record(&mut self) -> Result<Option<Vec<u8>>> {
        let mut len_buf = [0u8; 4];
        match self.reader.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut rec = vec![0u8; len];
        self.reader
            .read_exact(&mut rec)
            .map_err(|e| -> StoreError {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    StoreError::Corrupt("truncated sort run".into())
                } else {
                    e.into()
                }
            })?;
        Ok(Some(rec))
    }
}

enum Source {
    File(RunReader),
    Memory(std::vec::IntoIter<Vec<u8>>),
}

impl Source {
    fn next_record(&mut self) -> Result<Option<Vec<u8>>> {
        match self {
            Source::File(r) => r.next_record(),
            Source::Memory(it) => Ok(it.next()),
        }
    }
}

/// Iterator over the merged, sorted records.
pub struct SortedRun {
    heap: BinaryHeap<Reverse<(Vec<u8>, usize)>>,
    sources: Vec<Source>,
    _cleanup: TempDirGuard,
}

impl SortedRun {
    /// Next record in ascending order.
    pub fn next_record(&mut self) -> Result<Option<Vec<u8>>> {
        let Reverse((rec, src)) = match self.heap.pop() {
            Some(top) => top,
            None => return Ok(None),
        };
        if let Some(next) = self.sources[src].next_record()? {
            self.heap.push(Reverse((next, src)));
        }
        Ok(Some(rec))
    }
}

impl Iterator for SortedRun {
    type Item = Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_all(records: &[&[u8]], budget: usize) -> Vec<Vec<u8>> {
        let mut sorter = ExternalSorter::with_budget(budget).unwrap();
        for r in records {
            sorter.push(r).unwrap();
        }
        sorter.finish().unwrap().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn empty_input() {
        let out = sort_all(&[], 1024);
        assert!(out.is_empty());
    }

    #[test]
    fn single_record() {
        assert_eq!(sort_all(&[b"only"], 1024), vec![b"only".to_vec()]);
    }

    #[test]
    fn in_memory_sort() {
        let out = sort_all(&[b"c", b"a", b"b"], 1 << 20);
        assert_eq!(out, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn spilling_sort_matches_std_sort() {
        // Tiny budget: every few records spill, exercising the merge.
        let mut records: Vec<Vec<u8>> = (0..5000u32)
            .map(|i| {
                let x = i.wrapping_mul(2654435761) % 10000;
                format!("rec-{x:05}-{i}").into_bytes()
            })
            .collect();
        let mut sorter = ExternalSorter::with_budget(512).unwrap();
        for r in &records {
            sorter.push(r).unwrap();
        }
        assert!(sorter.spilled_runs() > 10, "expected many spilled runs");
        assert_eq!(sorter.record_count(), 5000);
        let out: Vec<Vec<u8>> = sorter.finish().unwrap().map(|r| r.unwrap()).collect();
        records.sort_unstable();
        assert_eq!(out, records);
    }

    #[test]
    fn duplicates_survive() {
        let out = sort_all(&[b"x", b"x", b"a", b"x"], 16);
        assert_eq!(
            out,
            vec![b"a".to_vec(), b"x".to_vec(), b"x".to_vec(), b"x".to_vec()]
        );
    }

    #[test]
    fn empty_records_sort_first() {
        let out = sort_all(&[b"a", b"", b"b", b""], 8);
        assert_eq!(
            out,
            vec![b"".to_vec(), b"".to_vec(), b"a".to_vec(), b"b".to_vec()]
        );
    }

    #[test]
    fn output_is_permutation_of_input() {
        let input: Vec<Vec<u8>> = (0..1000u32)
            .map(|i| (i.wrapping_mul(48271) % 257).to_le_bytes().to_vec())
            .collect();
        let mut sorter = ExternalSorter::with_budget(64).unwrap();
        for r in &input {
            sorter.push(r).unwrap();
        }
        let out: Vec<Vec<u8>> = sorter.finish().unwrap().map(|r| r.unwrap()).collect();
        let mut sorted_in = input.clone();
        sorted_in.sort_unstable();
        assert_eq!(out, sorted_in);
        // Sorted order check.
        for w in out.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn temp_files_cleaned_up() {
        let dir;
        {
            let mut sorter = ExternalSorter::with_budget(8).unwrap();
            dir = sorter.tmp_dir.clone();
            for i in 0..100u32 {
                sorter.push(&i.to_be_bytes()).unwrap();
            }
            assert!(dir.exists());
            let run = sorter.finish().unwrap();
            drop(run);
        }
        assert!(!dir.exists(), "temp dir {dir:?} should have been removed");
    }

    #[test]
    fn temp_files_cleaned_up_without_finish() {
        let dir;
        {
            let mut sorter = ExternalSorter::with_budget(8).unwrap();
            dir = sorter.tmp_dir.clone();
            for i in 0..100u32 {
                sorter.push(&i.to_be_bytes()).unwrap();
            }
            assert!(dir.exists());
            // Dropped without finish().
        }
        assert!(!dir.exists());
    }

    #[test]
    fn large_records() {
        let big1 = vec![b'z'; 100_000];
        let big2 = vec![b'a'; 100_000];
        let out = sort_all(&[&big1, &big2], 64);
        assert_eq!(out, vec![big2, big1]);
    }
}
