//! # fm-store — embedded relational storage substrate
//!
//! The SIGMOD 2003 fuzzy-match paper requires its index to be "implemented
//! and maintained as a standard relation … deployed even over current
//! operational data warehouses": the Error Tolerant Index is a relation with
//! a clustered B+-tree index, the pre-ETI is sorted by the database's sort
//! operator, and the reference relation is indexed on `Tid`. This crate is
//! that database substrate, built from scratch:
//!
//! * [`page`] — 8 KiB slotted pages;
//! * [`pager`] — file-backed and in-memory page stores, plus a
//!   fault-injecting wrapper for failure testing;
//! * [`buffer`] — a thread-safe buffer pool with clock eviction and pinning;
//! * [`heap`] — heap files of variable-length records addressed by
//!   [`heap::Rid`];
//! * [`keycode`] — order-preserving byte encodings for composite index keys;
//! * [`btree`] — a B+-tree over pages with point lookups and range scans;
//! * [`extsort`] — external merge sort (run generation + k-way merge), used
//!   to build the ETI from the pre-ETI exactly as the paper's "ETI-query"
//!   does with `ORDER BY`;
//! * [`table`] — typed schemas, values, and row codecs;
//! * [`wal`] — a write-ahead-logging pager giving atomic, durable
//!   checkpoints (crash-safe flushes);
//! * [`catalog`] — a [`catalog::Database`] bundling pager + buffer pool +
//!   persistent table/index catalog in a single file.
//!
//! The crate knows nothing about fuzzy matching; `fm-core` composes these
//! pieces into the ETI and the query processor.
//!
//! ```
//! use fm_store::{ColumnType, Database, Schema, Value};
//!
//! let db = Database::in_memory()?;
//! let table = db.create_table(
//!     "customer",
//!     Schema::new(vec![
//!         ("tid", ColumnType::U32, false),
//!         ("name", ColumnType::Text, true),
//!     ]),
//! )?;
//! let rid = table.insert(&vec![Value::U32(1), Value::Text("Boeing Company".into())])?;
//! assert_eq!(table.get(rid)?[1].as_text(), Some("Boeing Company"));
//!
//! let index = db.create_index("customer_by_tid")?;
//! index.insert(&1u32.to_be_bytes(), &rid.to_u64().to_le_bytes())?;
//! assert!(index.get(&1u32.to_be_bytes())?.is_some());
//! # Ok::<(), fm_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod error;
pub mod extsort;
pub mod heap;
pub mod hooks;
pub mod keycode;
pub mod lockorder;
pub mod page;
pub mod pager;
pub mod table;
pub mod wal;

pub use btree::{BTree, TreeCheck};
pub use buffer::{BufferPool, StoreStats};
pub use catalog::{Database, DatabaseCheck};
pub use error::{Result, StoreError};
pub use extsort::ExternalSorter;
pub use heap::{HeapCheck, HeapFile, Rid};
pub use page::{PageId, PAGE_SIZE};
pub use pager::{FaultPager, FilePager, MemPager, Pager};
pub use table::{ColumnType, Row, Schema, Value};
pub use wal::{WalCheck, WalPager};
