//! Error type shared by the storage substrate.

use std::fmt;

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure (file pager, external sort spill files).
    Io(std::io::Error),
    /// On-disk bytes failed validation (bad magic, truncated record, …).
    Corrupt(String),
    /// A record is larger than the maximum a single page can hold.
    /// Callers are expected to chunk (the ETI chunks its tid-lists).
    RecordTooLarge { len: usize, max: usize },
    /// A page id beyond the end of the store was referenced.
    InvalidPageId(u64),
    /// The named catalog object does not exist.
    NotFound(String),
    /// The named catalog object already exists.
    AlreadyExists(String),
    /// A value did not match the schema of its table.
    SchemaMismatch(String),
    /// Injected fault (tests only; produced by [`crate::pager::FaultPager`]).
    InjectedFault,
    /// Every buffer-pool frame is pinned; the working set exceeds capacity.
    PoolExhausted,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StoreError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds page capacity {max}")
            }
            StoreError::InvalidPageId(id) => write!(f, "invalid page id {id}"),
            StoreError::NotFound(name) => write!(f, "object not found: {name}"),
            StoreError::AlreadyExists(name) => write!(f, "object already exists: {name}"),
            StoreError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StoreError::InjectedFault => write!(f, "injected i/o fault"),
            StoreError::PoolExhausted => {
                write!(f, "buffer pool exhausted: all frames are pinned")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StoreError::RecordTooLarge {
            len: 9000,
            max: 8160,
        };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("8160"));
        assert!(StoreError::NotFound("eti".into())
            .to_string()
            .contains("eti"));
    }

    #[test]
    fn io_error_round_trips_through_source() {
        let io = std::io::Error::other("boom");
        let e: StoreError = io.into();
        let src = std::error::Error::source(&e).expect("has source");
        assert!(src.to_string().contains("boom"));
    }

    #[test]
    fn non_io_variants_have_no_source() {
        assert!(std::error::Error::source(&StoreError::InjectedFault).is_none());
    }
}
