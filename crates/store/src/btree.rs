//! B+-tree over slotted pages.
//!
//! This is the index structure behind both the ETI's clustered
//! `[QGram, Coordinate, Column, Chunk]` index and the reference relation's
//! `Tid` index. Keys and values are byte strings; keys are compared
//! lexicographically, so composite keys are encoded with
//! [`crate::keycode`] to make byte order equal logical order.
//!
//! Layout
//! ------
//! * **Leaf pages** hold cells `[klen:u16][key][value]` in key order; the
//!   header's `next_page` links the right sibling for range scans.
//! * **Internal pages** hold cells `[klen:u16][key][child:u32]` in key
//!   order; the cell's child covers keys `≥ key` (up to the next cell's
//!   key), and the header's `next_page` field holds the *leftmost* child
//!   (keys below the first cell's key). `aux` stores the node's level
//!   (leaves are level 0).
//! * **The root never moves.** On a root split the old root's bytes are
//!   copied to a fresh "left" page and the root page is re-initialized as
//!   an internal node over (left, right) — so the root page id recorded in
//!   the catalog stays valid forever.
//!
//! Concurrency: one tree-level `RwLock` (readers share, writers exclusive).
//! Page-level latch crabbing is deliberately out of scope — the paper's
//! workload builds the index once and then serves read-mostly lookups, and
//! the coarse latch keeps the structure trivially correct. Deletes do not
//! rebalance: a leaf may become arbitrarily underfull (PostgreSQL-style lazy
//! space reclamation without the reclamation); lookups and scans remain
//! correct.

use std::ops::Bound;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::buffer::BufferPool;
use crate::error::{Result, StoreError};
use crate::lockorder;
use crate::page::{PageId, PageType, SlottedPage, SlottedPageMut, PAGE_SIZE};

/// Maximum `key.len() + value.len()` accepted by [`BTree::insert`].
///
/// A quarter page guarantees a post-split node always has room for the
/// pending entry.
pub const MAX_ENTRY: usize = PAGE_SIZE / 4;

fn leaf_cell(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut cell = Vec::with_capacity(2 + key.len() + value.len());
    cell.extend_from_slice(&(key.len() as u16).to_le_bytes());
    cell.extend_from_slice(key);
    cell.extend_from_slice(value);
    cell
}

fn split_leaf_cell(cell: &[u8]) -> (&[u8], &[u8]) {
    let klen = u16::from_le_bytes([cell[0], cell[1]]) as usize;
    let key = &cell[2..2 + klen];
    let value = &cell[2 + klen..];
    (key, value)
}

fn internal_cell(key: &[u8], child: PageId) -> Vec<u8> {
    let mut cell = Vec::with_capacity(2 + key.len() + 4);
    cell.extend_from_slice(&(key.len() as u16).to_le_bytes());
    cell.extend_from_slice(key);
    cell.extend_from_slice(&child.0.to_le_bytes());
    cell
}

fn split_internal_cell(cell: &[u8]) -> (&[u8], PageId) {
    let klen = u16::from_le_bytes([cell[0], cell[1]]) as usize;
    let key = &cell[2..2 + klen];
    // lint:allow(unwrap): try_into on an exact 4-byte slice cannot fail
    let child = u32::from_le_bytes(cell[2 + klen..2 + klen + 4].try_into().unwrap());
    (key, PageId(child))
}

/// Binary search over a node's cells by key.
///
/// Returns `Ok(slot)` when `key` equals the slot's key, else `Err(slot)` of
/// the insertion point.
fn search_node(
    page: &SlottedPage<'_>,
    key: &[u8],
    internal: bool,
) -> std::result::Result<u16, u16> {
    let mut lo = 0u16;
    let mut hi = page.slot_count();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        // lint:allow(expect): mid < slot_count and btree nodes have no dead slots
        let cell = page.get(mid).expect("btree nodes have no dead slots");
        let ckey = if internal {
            split_internal_cell(cell).0
        } else {
            split_leaf_cell(cell).0
        };
        match ckey.cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Outcome of a recursive insert: the child split and the parent must add a
/// separator for the new right sibling.
struct SplitResult {
    sep: Vec<u8>,
    right: PageId,
}

/// A B+-tree index. [`BTree::clone_handle`] yields additional handles onto
/// the same tree that share the pool *and* the structural latch.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: PageId,
    latch: Arc<RwLock<()>>,
}

impl BTree {
    /// Create an empty tree, allocating its (permanent) root page.
    pub fn create(pool: Arc<BufferPool>) -> Result<BTree> {
        let root = {
            let (id, mut page) = pool.allocate()?;
            SlottedPageMut::new(&mut page).init(PageType::BTreeLeaf);
            id
        };
        Ok(BTree {
            pool,
            root,
            latch: Arc::new(RwLock::new(())),
        })
    }

    /// Open an existing tree rooted at `root` (persist the root id in the
    /// catalog; it never changes).
    pub fn open(pool: Arc<BufferPool>, root: PageId) -> BTree {
        BTree {
            pool,
            root,
            latch: Arc::new(RwLock::new(())),
        }
    }

    /// A second handle onto the same tree. Sharing the structural latch is
    /// what makes replica handles safe: a read through any handle still
    /// excludes a split in progress through any other. (Opening the same
    /// root twice with [`BTree::open`] would *not* give that guarantee —
    /// replicas must come from `clone_handle`.)
    #[must_use]
    pub fn clone_handle(&self) -> BTree {
        BTree {
            pool: Arc::clone(&self.pool),
            root: self.root,
            latch: Arc::clone(&self.latch),
        }
    }

    /// The permanent root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let _rank = lockorder::HeldRank::acquire(lockorder::LATCH, "latch");
        let _read = self.latch.read();
        let mut page_id = self.root;
        loop {
            let page = self.pool.get(page_id)?;
            let sp = SlottedPage::new(&page);
            match sp.page_type()? {
                PageType::BTreeLeaf => {
                    return match search_node(&sp, key, false) {
                        Ok(slot) => {
                            let cell = sp.get(slot).ok_or_else(|| {
                                StoreError::Corrupt(format!("dead slot {slot} in btree leaf"))
                            })?;
                            let (_, value) = split_leaf_cell(cell);
                            Ok(Some(value.to_vec()))
                        }
                        Err(_) => Ok(None),
                    };
                }
                PageType::BTreeInternal => {
                    let next = Self::child_for(&sp, key)?;
                    drop(page);
                    page_id = next;
                }
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "unexpected page type {other:?} in btree"
                    )))
                }
            }
        }
    }

    /// The child of `node` responsible for `key`.
    fn child_for(node: &SlottedPage<'_>, key: &[u8]) -> Result<PageId> {
        let slot = match search_node(node, key, true) {
            Ok(slot) => slot,
            Err(0) => return Ok(node.next_page()), // leftmost child
            Err(slot) => slot - 1,
        };
        let cell = node
            .get(slot)
            .ok_or_else(|| StoreError::Corrupt(format!("dead slot {slot} in btree node")))?;
        Ok(split_internal_cell(cell).1)
    }

    /// Insert or update (`upsert`). Returns `true` if the key was new.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        if key.len() + value.len() > MAX_ENTRY {
            return Err(StoreError::RecordTooLarge {
                len: key.len() + value.len(),
                max: MAX_ENTRY,
            });
        }
        let _rank = lockorder::HeldRank::acquire(lockorder::LATCH, "latch");
        let _write = self.latch.write();
        let mut inserted = false;
        if let Some(split) = self.insert_rec(self.root, key, value, &mut inserted)? {
            self.grow_root(split)?;
        }
        Ok(inserted)
    }

    fn insert_rec(
        &self,
        page_id: PageId,
        key: &[u8],
        value: &[u8],
        inserted: &mut bool,
    ) -> Result<Option<SplitResult>> {
        let (page_type, child) = {
            let page = self.pool.get(page_id)?;
            let sp = SlottedPage::new(&page);
            let pt = sp.page_type()?;
            match pt {
                PageType::BTreeLeaf => (pt, PageId::NONE),
                PageType::BTreeInternal => (pt, Self::child_for(&sp, key)?),
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "unexpected page type {other:?} in btree"
                    )))
                }
            }
        };
        if page_type == PageType::BTreeLeaf {
            self.leaf_insert(page_id, key, value, inserted)
        } else {
            let child_split = self.insert_rec(child, key, value, inserted)?;
            match child_split {
                None => Ok(None),
                Some(split) => self.internal_add(page_id, split),
            }
        }
    }

    fn leaf_insert(
        &self,
        page_id: PageId,
        key: &[u8],
        value: &[u8],
        inserted: &mut bool,
    ) -> Result<Option<SplitResult>> {
        let cell = leaf_cell(key, value);
        // Whether the key existed before this call (an upsert whose replace
        // overflows removes the old cell first, but must still not count as
        // an insertion).
        let mut was_present = false;
        {
            let mut page = self.pool.get_mut(page_id)?;
            let mut sp = SlottedPageMut::new(&mut page);
            match search_node(&sp.view(), key, false) {
                Ok(slot) => {
                    was_present = true;
                    // Upsert; replacement may itself overflow the page.
                    match sp.replace(slot, &cell) {
                        Ok(()) => return Ok(None),
                        Err(StoreError::RecordTooLarge { .. }) => {
                            // Remove then fall through to split-insert path.
                            sp.remove_at(slot);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(slot) => match sp.insert_at(slot, &cell) {
                    Ok(()) => {
                        *inserted = true;
                        return Ok(None);
                    }
                    Err(StoreError::RecordTooLarge { .. }) => {}
                    Err(e) => return Err(e),
                },
            }
        }
        // Split, then insert into the proper half.
        let split = self.split_page(page_id, PageType::BTreeLeaf)?;
        let target = if key < split.sep.as_slice() {
            page_id
        } else {
            split.right
        };
        let mut page = self.pool.get_mut(target)?;
        let mut sp = SlottedPageMut::new(&mut page);
        match search_node(&sp.view(), key, false) {
            Ok(slot) => sp.replace(slot, &cell)?,
            Err(slot) => {
                sp.insert_at(slot, &cell)?;
                *inserted = !was_present;
            }
        }
        Ok(Some(split))
    }

    /// Add a separator cell for a freshly split child; split this internal
    /// node too if needed.
    fn internal_add(
        &self,
        page_id: PageId,
        child_split: SplitResult,
    ) -> Result<Option<SplitResult>> {
        let cell = internal_cell(&child_split.sep, child_split.right);
        {
            let mut page = self.pool.get_mut(page_id)?;
            let mut sp = SlottedPageMut::new(&mut page);
            match search_node(&sp.view(), &child_split.sep, true) {
                Ok(_) => {
                    return Err(StoreError::Corrupt(
                        "duplicate separator during split propagation".into(),
                    ))
                }
                Err(slot) => match sp.insert_at(slot, &cell) {
                    Ok(()) => return Ok(None),
                    Err(StoreError::RecordTooLarge { .. }) => {}
                    Err(e) => return Err(e),
                },
            }
        }
        let split = self.split_page(page_id, PageType::BTreeInternal)?;
        let target = if child_split.sep.as_slice() < split.sep.as_slice() {
            page_id
        } else {
            split.right
        };
        let mut page = self.pool.get_mut(target)?;
        let mut sp = SlottedPageMut::new(&mut page);
        match search_node(&sp.view(), &child_split.sep, true) {
            Ok(_) => {
                return Err(StoreError::Corrupt(
                    "duplicate separator during split propagation".into(),
                ))
            }
            Err(slot) => sp.insert_at(slot, &cell)?,
        }
        Ok(Some(split))
    }

    /// Split `page_id` at its byte midpoint into (page_id, right), returning
    /// the separator. For internal nodes the middle key is *pushed up*: it
    /// becomes the separator and its child becomes the right node's leftmost
    /// child.
    fn split_page(&self, page_id: PageId, page_type: PageType) -> Result<SplitResult> {
        // Snapshot cells.
        let (cells, next_page, aux): (Vec<Vec<u8>>, PageId, u32) = {
            let page = self.pool.get(page_id)?;
            let sp = SlottedPage::new(&page);
            let cells = (0..sp.slot_count())
                .map(|i| {
                    sp.get(i)
                        .map(<[u8]>::to_vec)
                        .ok_or_else(|| StoreError::Corrupt(format!("dead slot {i} during split")))
                })
                .collect::<Result<_>>()?;
            (cells, sp.next_page(), sp.aux())
        };
        assert!(cells.len() >= 2, "cannot split a node with < 2 cells");
        let total: usize = cells.iter().map(|c| c.len()).sum();
        let mut acc = 0usize;
        let mut mid = cells.len() / 2; // fallback
        for (i, c) in cells.iter().enumerate() {
            acc += c.len();
            if acc * 2 >= total {
                mid = i + 1;
                break;
            }
        }
        mid = mid.clamp(1, cells.len() - 1);

        let (right_id, sep) = {
            let (right_id, mut right_page) = self.pool.allocate()?;
            let mut rp = SlottedPageMut::new(&mut right_page);
            rp.init(page_type);
            rp.set_aux(aux);
            let sep;
            match page_type {
                PageType::BTreeLeaf => {
                    sep = split_leaf_cell(&cells[mid]).0.to_vec();
                    // Right sibling chain: right takes left's old sibling.
                    rp.set_next_page(next_page);
                    for (i, cell) in cells[mid..].iter().enumerate() {
                        rp.insert_at(i as u16, cell)?;
                    }
                }
                PageType::BTreeInternal => {
                    let (mid_key, mid_child) = split_internal_cell(&cells[mid]);
                    sep = mid_key.to_vec();
                    // Middle key moves up; its child is right's leftmost.
                    rp.set_next_page(mid_child);
                    for (i, cell) in cells[mid + 1..].iter().enumerate() {
                        rp.insert_at(i as u16, cell)?;
                    }
                }
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "split_page on a non-btree page ({other:?})"
                    )))
                }
            }
            (right_id, sep)
        };

        // Shrink the left node.
        {
            let mut page = self.pool.get_mut(page_id)?;
            let mut sp = SlottedPageMut::new(&mut page);
            while sp.view().slot_count() > mid as u16 {
                let last = sp.view().slot_count() - 1;
                sp.remove_at(last);
            }
            sp.compact();
            if page_type == PageType::BTreeLeaf {
                sp.set_next_page(right_id);
            }
        }
        Ok(SplitResult {
            sep,
            right: right_id,
        })
    }

    /// Handle a root split: copy the root into a fresh left page and rebuild
    /// the root as an internal node over (left, right).
    fn grow_root(&self, split: SplitResult) -> Result<()> {
        let (left_id, old_level) = {
            let (left_id, mut left_page) = self.pool.allocate()?;
            let root_page = self.pool.get(self.root)?;
            left_page.copy_from_slice(&root_page);
            let level = SlottedPage::new(&root_page).aux();
            (left_id, level)
        };
        let mut root_page = self.pool.get_mut(self.root)?;
        let mut rp = SlottedPageMut::new(&mut root_page);
        rp.init(PageType::BTreeInternal);
        rp.set_aux(old_level + 1);
        rp.set_next_page(left_id); // leftmost child
        rp.insert_at(0, &internal_cell(&split.sep, split.right))?;
        Ok(())
    }

    /// Bulk-load a sorted entry stream into an **empty** tree.
    ///
    /// The ETI build produces its rows in exactly ascending key order (the
    /// pre-ETI merge is the paper's "ETI-query ORDER BY"), so instead of
    /// paying a top-down insert per row — which, for sorted input, splits
    /// every leaf at ~50% fill — leaves are packed left to right to a 90%
    /// fill factor and the internal levels are built bottom-up. The tree's
    /// (permanent) root page receives the top node, so the catalog-recorded
    /// root id stays valid.
    ///
    /// Keys must be strictly ascending; entries must fit [`MAX_ENTRY`]. The
    /// tree remains fully mutable afterwards (maintenance inserts go
    /// through the normal path).
    pub fn bulk_fill<I>(&self, entries: I) -> Result<()>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        let _rank = lockorder::HeldRank::acquire(lockorder::LATCH, "latch");
        let _write = self.latch.write();
        {
            let root = self.pool.get(self.root)?;
            let sp = SlottedPage::new(&root);
            if sp.page_type()? != PageType::BTreeLeaf || sp.slot_count() != 0 {
                return Err(StoreError::Corrupt(
                    "bulk_fill requires an empty tree".into(),
                ));
            }
        }
        // Target fill: leave headroom for future maintenance inserts.
        let fill_limit = (PAGE_SIZE * 9) / 10;

        // Phase 1: pack leaves. `leaves` collects (first_key, page_id).
        let mut leaves: Vec<(Vec<u8>, PageId)> = Vec::new();
        let mut current: Option<(PageId, Vec<u8>, usize)> = None; // (pid, first_key, used)
        let mut prev_key: Option<Vec<u8>> = None;
        for (key, value) in entries {
            if key.len() + value.len() > MAX_ENTRY {
                return Err(StoreError::RecordTooLarge {
                    len: key.len() + value.len(),
                    max: MAX_ENTRY,
                });
            }
            if let Some(prev) = &prev_key {
                if *prev >= key {
                    return Err(StoreError::Corrupt(
                        "bulk_fill keys must be strictly ascending".into(),
                    ));
                }
            }
            let cell = leaf_cell(&key, &value);
            let need = cell.len() + 4; // slot entry
            let start_new = match &current {
                None => true,
                Some((_, _, used)) => used + need > fill_limit,
            };
            if start_new {
                // Seal the previous leaf and open a new one.
                let (pid, mut page) = self.pool.allocate()?;
                SlottedPageMut::new(&mut page).init(PageType::BTreeLeaf);
                drop(page);
                if let Some((prev_pid, first_key, _)) = current.take() {
                    let mut prev_page = self.pool.get_mut(prev_pid)?;
                    SlottedPageMut::new(&mut prev_page).set_next_page(pid);
                    drop(prev_page);
                    leaves.push((first_key, prev_pid));
                }
                current = Some((pid, key.clone(), crate::page::HEADER_SIZE));
            }
            // lint:allow(unwrap): `current` was just opened when start_new held
            let (pid, _, used) = current.as_mut().unwrap();
            let mut page = self.pool.get_mut(*pid)?;
            let mut sp = SlottedPageMut::new(&mut page);
            let n = sp.view().slot_count();
            sp.insert_at(n, &cell)?;
            *used += need;
            prev_key = Some(key);
        }
        let Some((last_pid, last_first_key, _)) = current.take() else {
            return Ok(()); // empty input: tree stays an empty leaf
        };
        leaves.push((last_first_key, last_pid));

        if leaves.len() == 1 {
            // Everything fits logically in one leaf: move it into the root.
            let (_, only) = &leaves[0];
            let src = self.pool.get(*only)?;
            let mut dst = self.pool.get_mut(self.root)?;
            dst.copy_from_slice(&src);
            return Ok(());
        }

        // Phase 2: build internal levels bottom-up. Leaves sit at level 0;
        // each pass up stamps `aux` so later root splits (which derive the
        // new root's level from the old root's) stay correct.
        let mut level: Vec<(Vec<u8>, PageId)> = leaves;
        let mut height = 0u32;
        loop {
            height += 1;
            let mut next_level: Vec<(Vec<u8>, PageId)> = Vec::new();
            let mut iter = level.into_iter().peekable();
            while iter.peek().is_some() {
                // lint:allow(unwrap): peek() just confirmed another item
                let (node_key, leftmost) = iter.next().unwrap();
                let (pid, mut page) = self.pool.allocate()?;
                let mut sp = SlottedPageMut::new(&mut page);
                sp.init(PageType::BTreeInternal);
                sp.set_aux(height);
                sp.set_next_page(leftmost);
                let mut used = crate::page::HEADER_SIZE;
                while let Some((sep, _)) = iter.peek() {
                    let cell_len = 2 + sep.len() + 4 + 4;
                    if used + cell_len > fill_limit {
                        break;
                    }
                    // lint:allow(unwrap): peek() just confirmed another item
                    let (sep, child) = iter.next().unwrap();
                    let n = sp.view().slot_count();
                    sp.insert_at(n, &internal_cell(&sep, child))?;
                    used += cell_len;
                }
                drop(page);
                next_level.push((node_key, pid));
            }
            if next_level.len() == 1 {
                // Move the single top node into the permanent root.
                let (_, top) = &next_level[0];
                let src = self.pool.get(*top)?;
                let mut dst = self.pool.get_mut(self.root)?;
                dst.copy_from_slice(&src);
                return Ok(());
            }
            level = next_level;
        }
    }

    /// Delete `key`. Returns `true` if it was present. No rebalancing (see
    /// module docs).
    pub fn delete(&self, key: &[u8]) -> Result<bool> {
        let _rank = lockorder::HeldRank::acquire(lockorder::LATCH, "latch");
        let _write = self.latch.write();
        let mut page_id = self.root;
        loop {
            let page_type = {
                let page = self.pool.get(page_id)?;
                let sp = SlottedPage::new(&page);
                let pt = sp.page_type()?;
                if pt == PageType::BTreeInternal {
                    let next = Self::child_for(&sp, key)?;
                    drop(page);
                    page_id = next;
                    continue;
                }
                pt
            };
            debug_assert_eq!(page_type, PageType::BTreeLeaf);
            let mut page = self.pool.get_mut(page_id)?;
            let mut sp = SlottedPageMut::new(&mut page);
            return Ok(match search_node(&sp.view(), key, false) {
                Ok(slot) => {
                    sp.remove_at(slot);
                    true
                }
                Err(_) => false,
            });
        }
    }

    /// Range scan over `[start, end)` byte-key bounds.
    pub fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<RangeScan<'_>> {
        let _rank = lockorder::HeldRank::acquire(lockorder::LATCH, "latch");
        let _read = self.latch.read();
        // Find the first leaf possibly containing the start bound.
        let seek: &[u8] = match start {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        let mut page_id = self.root;
        loop {
            let page = self.pool.get(page_id)?;
            let sp = SlottedPage::new(&page);
            match sp.page_type()? {
                PageType::BTreeLeaf => break,
                PageType::BTreeInternal => {
                    let next = Self::child_for(&sp, seek)?;
                    drop(page);
                    page_id = next;
                }
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "unexpected page type {other:?} in btree"
                    )))
                }
            }
        }
        let end_owned = match end {
            Bound::Included(k) => Bound::Included(k.to_vec()),
            Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut scan = RangeScan {
            tree: self,
            next_leaf: page_id,
            start: match start {
                Bound::Included(k) => Bound::Included(k.to_vec()),
                Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
                Bound::Unbounded => Bound::Unbounded,
            },
            end: end_owned,
            buffer: Vec::new().into_iter(),
            done: false,
        };
        scan.load_next_leaf()?;
        Ok(scan)
    }

    /// All entries whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<RangeScan<'_>> {
        // [prefix, successor(prefix)) — successor = prefix with last
        // incrementable byte bumped.
        let mut upper = prefix.to_vec();
        loop {
            match upper.last_mut() {
                None => return self.range(Bound::Included(prefix), Bound::Unbounded),
                Some(b) if *b < 0xFF => {
                    *b += 1;
                    break;
                }
                Some(_) => {
                    upper.pop();
                }
            }
        }
        self.range(Bound::Included(prefix), Bound::Excluded(&upper))
    }

    /// Number of entries (full scan; for tests and stats).
    pub fn len(&self) -> Result<usize> {
        let mut n = 0;
        let mut scan = self.range(Bound::Unbounded, Bound::Unbounded)?;
        while scan.next_entry()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// `len() == 0` without scanning everything.
    pub fn is_empty(&self) -> Result<bool> {
        let mut scan = self.range(Bound::Unbounded, Bound::Unbounded)?;
        Ok(scan.next_entry()?.is_none())
    }

    /// Validate the whole tree's structural invariants and return a summary.
    ///
    /// Checks, per node: the slotted page's physical layout
    /// ([`SlottedPage::check_invariants`]), node type, strictly ascending
    /// keys, and separator bounds (every key in a subtree lies in the
    /// half-open interval its parent's separators promise). Checks, per
    /// tree: every internal node's children sit exactly one level below it
    /// (`aux`), every page is reachable exactly once (no cycles, no shared
    /// children), and the leaf sibling chain visits the leaves in exactly
    /// left-to-right key order, terminating with [`PageId::NONE`].
    ///
    /// Fill factors are reported, not enforced: deletes never rebalance, so
    /// a leaf may legitimately be empty ([module docs](self)).
    pub fn check_invariants(&self) -> Result<TreeCheck> {
        let _rank = lockorder::HeldRank::acquire(lockorder::LATCH, "latch");
        let _read = self.latch.read();
        let mut visited = std::collections::HashSet::new();
        let mut leaves: Vec<PageId> = Vec::new();
        let mut check = TreeCheck {
            depth: 0,
            internal_pages: 0,
            leaf_pages: 0,
            entries: 0,
            leaf_live_bytes: 0,
        };
        let root_level =
            self.check_node(self.root, None, None, &mut visited, &mut leaves, &mut check)?;
        check.depth = root_level + 1;
        // The sibling chain must equal left-to-right leaf order.
        for (i, &leaf) in leaves.iter().enumerate() {
            let next = {
                let page = self.pool.get(leaf)?;
                SlottedPage::new(&page).next_page()
            };
            let expected = leaves.get(i + 1).copied().unwrap_or(PageId::NONE);
            if next != expected {
                return Err(StoreError::Corrupt(format!(
                    "leaf {leaf} sibling link points to {next}, expected {expected} \
                     (leaf {i} of {})",
                    leaves.len()
                )));
            }
        }
        Ok(check)
    }

    /// Recursive helper for [`BTree::check_invariants`]: validates the
    /// subtree rooted at `page_id` against the key bounds `[lower, upper)`
    /// and returns the node's level. Copies each node's cells out before
    /// recursing, so only one page is pinned at a time.
    fn check_node(
        &self,
        page_id: PageId,
        lower: Option<&[u8]>,
        upper: Option<&[u8]>,
        visited: &mut std::collections::HashSet<PageId>,
        leaves: &mut Vec<PageId>,
        check: &mut TreeCheck,
    ) -> Result<u32> {
        if !visited.insert(page_id) {
            return Err(StoreError::Corrupt(format!(
                "page {page_id} reachable twice (cycle or shared child)"
            )));
        }
        enum Node {
            Leaf {
                keys: Vec<Vec<u8>>,
                live_bytes: usize,
            },
            Internal {
                leftmost: PageId,
                cells: Vec<(Vec<u8>, PageId)>,
            },
        }
        let (node, level) = {
            let page = self.pool.get(page_id)?;
            let sp = SlottedPage::new(&page);
            sp.check_invariants()
                .map_err(|e| StoreError::Corrupt(format!("btree page {page_id}: {e}")))?;
            let level = sp.aux();
            match sp.page_type()? {
                PageType::BTreeLeaf => {
                    let keys = sp
                        .iter()
                        .map(|(_, cell)| split_leaf_cell(cell).0.to_vec())
                        .collect();
                    let live_bytes = sp.iter().map(|(_, cell)| cell.len()).sum();
                    (Node::Leaf { keys, live_bytes }, level)
                }
                PageType::BTreeInternal => {
                    let cells = sp
                        .iter()
                        .map(|(_, cell)| {
                            let (key, child) = split_internal_cell(cell);
                            (key.to_vec(), child)
                        })
                        .collect();
                    (
                        Node::Internal {
                            leftmost: sp.next_page(),
                            cells,
                        },
                        level,
                    )
                }
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "page {page_id}: unexpected page type {other:?} in btree"
                    )))
                }
            }
        };
        let check_key = |key: &[u8], what: &str| -> Result<()> {
            if let Some(lo) = lower {
                if key < lo {
                    return Err(StoreError::Corrupt(format!(
                        "page {page_id}: {what} {key:?} below parent separator {lo:?}"
                    )));
                }
            }
            if let Some(up) = upper {
                if key >= up {
                    return Err(StoreError::Corrupt(format!(
                        "page {page_id}: {what} {key:?} at or above parent bound {up:?}"
                    )));
                }
            }
            Ok(())
        };
        match node {
            Node::Leaf { keys, live_bytes } => {
                if level != 0 {
                    return Err(StoreError::Corrupt(format!(
                        "leaf {page_id} claims level {level}, leaves are level 0"
                    )));
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err(StoreError::Corrupt(format!(
                            "leaf {page_id}: keys out of order ({:?} then {:?})",
                            w[0], w[1]
                        )));
                    }
                }
                for key in &keys {
                    check_key(key, "leaf key")?;
                }
                check.leaf_pages += 1;
                check.entries += keys.len();
                check.leaf_live_bytes += live_bytes;
                leaves.push(page_id);
                Ok(0)
            }
            Node::Internal { leftmost, cells } => {
                if level == 0 {
                    return Err(StoreError::Corrupt(format!(
                        "internal node {page_id} claims level 0"
                    )));
                }
                if cells.is_empty() {
                    return Err(StoreError::Corrupt(format!(
                        "internal node {page_id} has no separators"
                    )));
                }
                if leftmost.is_none() {
                    return Err(StoreError::Corrupt(format!(
                        "internal node {page_id} has no leftmost child"
                    )));
                }
                for w in cells.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return Err(StoreError::Corrupt(format!(
                            "internal node {page_id}: separators out of order ({:?} then {:?})",
                            w[0].0, w[1].0
                        )));
                    }
                }
                for (key, _) in &cells {
                    check_key(key, "separator")?;
                }
                check.internal_pages += 1;
                // Leftmost child covers [lower, first separator); cell i's
                // child covers [key_i, key_{i+1} or upper).
                let verify_child = |child: PageId,
                                    lo: Option<&[u8]>,
                                    up: Option<&[u8]>,
                                    visited: &mut std::collections::HashSet<PageId>,
                                    leaves: &mut Vec<PageId>,
                                    check: &mut TreeCheck|
                 -> Result<()> {
                    let child_level = self.check_node(child, lo, up, visited, leaves, check)?;
                    if child_level != level - 1 {
                        return Err(StoreError::Corrupt(format!(
                            "page {page_id} at level {level} has child {child} at level \
                             {child_level}, expected {}",
                            level - 1
                        )));
                    }
                    Ok(())
                };
                verify_child(leftmost, lower, Some(&cells[0].0), visited, leaves, check)?;
                for i in 0..cells.len() {
                    let lo = Some(cells[i].0.as_slice());
                    let up = cells.get(i + 1).map(|c| c.0.as_slice()).or(upper);
                    verify_child(cells[i].1, lo, up, visited, leaves, check)?;
                }
                Ok(level)
            }
        }
    }
}

/// Structural summary returned by [`BTree::check_invariants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeCheck {
    /// Levels including the leaf level (a lone leaf root has depth 1).
    pub depth: u32,
    pub internal_pages: usize,
    pub leaf_pages: usize,
    pub entries: usize,
    /// Total bytes of live leaf cells — `leaf_live_bytes / (leaf_pages *
    /// PAGE_SIZE)` is the leaf fill factor (informational; deletes never
    /// rebalance, so no minimum is enforced).
    pub leaf_live_bytes: usize,
}

/// Iterator over a key range. Buffers one leaf at a time; does not hold page
/// pins across yields.
pub struct RangeScan<'a> {
    tree: &'a BTree,
    next_leaf: PageId,
    start: Bound<Vec<u8>>,
    end: Bound<Vec<u8>>,
    buffer: std::vec::IntoIter<(Vec<u8>, Vec<u8>)>,
    done: bool,
}

impl RangeScan<'_> {
    fn load_next_leaf(&mut self) -> Result<()> {
        while !self.done {
            if self.next_leaf.is_none() {
                self.done = true;
                return Ok(());
            }
            let page = self.tree.pool.get(self.next_leaf)?;
            let sp = SlottedPage::new(&page);
            let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(sp.slot_count() as usize);
            let mut past_end = false;
            for i in 0..sp.slot_count() {
                let Some(cell) = sp.get(i) else {
                    return Err(StoreError::Corrupt(format!("dead slot {i} in btree leaf")));
                };
                let (k, v) = split_leaf_cell(cell);
                let after_start = match &self.start {
                    Bound::Included(s) => k >= s.as_slice(),
                    Bound::Excluded(s) => k > s.as_slice(),
                    Bound::Unbounded => true,
                };
                let before_end = match &self.end {
                    Bound::Included(e) => k <= e.as_slice(),
                    Bound::Excluded(e) => k < e.as_slice(),
                    Bound::Unbounded => true,
                };
                if !before_end {
                    past_end = true;
                    break;
                }
                if after_start {
                    entries.push((k.to_vec(), v.to_vec()));
                }
            }
            self.next_leaf = if past_end {
                PageId::NONE
            } else {
                sp.next_page()
            };
            if !entries.is_empty() {
                self.buffer = entries.into_iter();
                return Ok(());
            }
            // Empty leaf (or everything filtered): keep walking.
        }
        Ok(())
    }

    /// Next `(key, value)` entry, or `None` at the end of the range.
    pub fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        loop {
            if let Some(e) = self.buffer.next() {
                return Ok(Some(e));
            }
            if self.done {
                return Ok(None);
            }
            self.load_next_leaf()?;
        }
    }
}

impl Iterator for RangeScan<'_> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_entry().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn tree() -> BTree {
        let pool = Arc::new(BufferPool::new(Box::new(MemPager::new()), 64));
        BTree::create(pool).unwrap()
    }

    fn k(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    fn v(i: u32) -> Vec<u8> {
        format!("value-{i}").into_bytes()
    }

    #[test]
    fn empty_tree_lookup() {
        let t = tree();
        assert_eq!(t.get(b"anything").unwrap(), None);
        assert!(t.is_empty().unwrap());
        assert_eq!(t.len().unwrap(), 0);
    }

    #[test]
    fn single_insert_get() {
        let t = tree();
        assert!(t.insert(b"boeing", b"R1").unwrap());
        assert_eq!(t.get(b"boeing").unwrap(), Some(b"R1".to_vec()));
        assert_eq!(t.get(b"bon").unwrap(), None);
    }

    #[test]
    fn upsert_replaces() {
        let t = tree();
        assert!(t.insert(b"k", b"v1").unwrap());
        assert!(!t.insert(b"k", b"v2-longer").unwrap());
        assert_eq!(t.get(b"k").unwrap(), Some(b"v2-longer".to_vec()));
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn many_inserts_with_splits_ascending() {
        let t = tree();
        let n = 5000;
        for i in 0..n {
            t.insert(&k(i), &v(i)).unwrap();
        }
        assert_eq!(t.len().unwrap(), n as usize);
        for i in (0..n).step_by(37) {
            assert_eq!(t.get(&k(i)).unwrap(), Some(v(i)), "key {i}");
        }
    }

    #[test]
    fn many_inserts_descending() {
        let t = tree();
        let n = 3000;
        for i in (0..n).rev() {
            t.insert(&k(i), &v(i)).unwrap();
        }
        for i in 0..n {
            assert_eq!(t.get(&k(i)).unwrap(), Some(v(i)));
        }
    }

    #[test]
    fn many_inserts_pseudorandom_order() {
        let t = tree();
        let n: u32 = 4096;
        // LCG permutation of 0..n (n is a power of two; a=5, c=3 gives full
        // period for mod 2^k with a≡1 mod 4, c odd).
        let mut x: u32 = 1;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            x = x.wrapping_mul(5).wrapping_add(3) % n;
            // LCG may repeat before covering all; force uniqueness:
            let mut y = x;
            while !seen.insert(y) {
                y = (y + 1) % n;
            }
            t.insert(&k(y), &v(y)).unwrap();
        }
        assert_eq!(t.len().unwrap(), n as usize);
        for i in 0..n {
            assert_eq!(t.get(&k(i)).unwrap(), Some(v(i)), "missing key {i}");
        }
    }

    #[test]
    fn range_scan_in_order() {
        let t = tree();
        for i in 0..2000 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let got: Vec<Vec<u8>> = t
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|r| r.unwrap().0)
            .collect();
        let want: Vec<Vec<u8>> = (0..2000).map(k).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn bounded_range_scan() {
        let t = tree();
        for i in 0..100 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let got: Vec<Vec<u8>> = t
            .range(Bound::Included(&k(10)), Bound::Excluded(&k(20)))
            .unwrap()
            .map(|r| r.unwrap().0)
            .collect();
        assert_eq!(got, (10..20).map(k).collect::<Vec<_>>());
        // Excluded start / included end.
        let got: Vec<Vec<u8>> = t
            .range(Bound::Excluded(&k(95)), Bound::Included(&k(97)))
            .unwrap()
            .map(|r| r.unwrap().0)
            .collect();
        assert_eq!(got, vec![k(96), k(97)]);
    }

    #[test]
    fn prefix_scan() {
        let t = tree();
        t.insert(b"ing\x001\x01", b"a").unwrap();
        t.insert(b"ing\x001\x02", b"b").unwrap();
        t.insert(b"inh\x001\x01", b"c").unwrap();
        t.insert(b"in", b"d").unwrap();
        let got: Vec<Vec<u8>> = t
            .scan_prefix(b"ing\x00")
            .unwrap()
            .map(|r| r.unwrap().0)
            .collect();
        assert_eq!(
            got,
            vec![b"ing\x001\x01".to_vec(), b"ing\x001\x02".to_vec()]
        );
    }

    #[test]
    fn prefix_scan_all_ff_prefix() {
        let t = tree();
        t.insert(&[0xFF, 0xFF, 1], b"x").unwrap();
        t.insert(&[0xFE], b"y").unwrap();
        let got: Vec<Vec<u8>> = t
            .scan_prefix(&[0xFF, 0xFF])
            .unwrap()
            .map(|r| r.unwrap().0)
            .collect();
        assert_eq!(got, vec![vec![0xFF, 0xFF, 1]]);
    }

    #[test]
    fn delete_existing_and_missing() {
        let t = tree();
        for i in 0..500 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        assert!(t.delete(&k(250)).unwrap());
        assert!(!t.delete(&k(250)).unwrap());
        assert_eq!(t.get(&k(250)).unwrap(), None);
        assert_eq!(t.get(&k(249)).unwrap(), Some(v(249)));
        assert_eq!(t.len().unwrap(), 499);
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let t = tree();
        for i in 0..1000 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        for i in 0..1000 {
            assert!(t.delete(&k(i)).unwrap());
        }
        assert_eq!(t.len().unwrap(), 0);
        for i in 0..1000 {
            assert!(t.insert(&k(i), &v(i)).unwrap());
        }
        assert_eq!(t.len().unwrap(), 1000);
    }

    #[test]
    fn oversized_entry_rejected() {
        let t = tree();
        let big = vec![0u8; MAX_ENTRY + 1];
        assert!(matches!(
            t.insert(b"k", &big),
            Err(StoreError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn variable_sized_values_across_splits() {
        let t = tree();
        // Values of wildly varying sizes force byte-balanced splits.
        for i in 0..800u32 {
            let val = vec![b'x'; (i as usize * 37) % 1500];
            t.insert(&k(i), &val).unwrap();
        }
        for i in 0..800u32 {
            let val = vec![b'x'; (i as usize * 37) % 1500];
            assert_eq!(t.get(&k(i)).unwrap(), Some(val));
        }
    }

    #[test]
    fn upsert_larger_value_across_page_overflow() {
        let t = tree();
        let filler = vec![b'a'; 30];
        for i in 0..200u32 {
            t.insert(&k(i), &filler).unwrap();
        }
        // Grow one value so much its leaf must split.
        t.insert(&k(100), &vec![b'b'; 1800]).unwrap();
        assert_eq!(t.get(&k(100)).unwrap(), Some(vec![b'b'; 1800]));
        assert_eq!(t.len().unwrap(), 200);
        for i in 0..200u32 {
            if i != 100 {
                assert_eq!(t.get(&k(i)).unwrap(), Some(vec![b'a'; 30]));
            }
        }
    }

    #[test]
    fn root_page_id_is_stable_across_splits() {
        let pool = Arc::new(BufferPool::new(Box::new(MemPager::new()), 64));
        let t = BTree::create(Arc::clone(&pool)).unwrap();
        let root = t.root();
        for i in 0..10_000 {
            t.insert(&k(i), b"v").unwrap();
        }
        assert_eq!(t.root(), root);
        // Reopen by root id.
        drop(t);
        let t2 = BTree::open(pool, root);
        assert_eq!(t2.get(&k(9999)).unwrap(), Some(b"v".to_vec()));
        assert_eq!(t2.len().unwrap(), 10_000);
    }

    #[test]
    fn persists_through_file_pager() {
        let mut path = std::env::temp_dir();
        path.push(format!("fm-store-btree-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let root;
        {
            let pool = Arc::new(BufferPool::new(
                Box::new(crate::pager::FilePager::open(&path).unwrap()),
                32,
            ));
            let t = BTree::create(Arc::clone(&pool)).unwrap();
            root = t.root();
            for i in 0..3000 {
                t.insert(&k(i), &v(i)).unwrap();
            }
            pool.flush().unwrap();
        }
        {
            let pool = Arc::new(BufferPool::new(
                Box::new(crate::pager::FilePager::open(&path).unwrap()),
                32,
            ));
            let t = BTree::open(pool, root);
            for i in (0..3000).step_by(17) {
                assert_eq!(t.get(&k(i)).unwrap(), Some(v(i)));
            }
            assert_eq!(t.len().unwrap(), 3000);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_readers_during_reads() {
        let pool = Arc::new(BufferPool::new(Box::new(MemPager::new()), 64));
        let t = Arc::new(BTree::create(pool).unwrap());
        for i in 0..2000 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let mut handles = Vec::new();
        for start in 0..4u32 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in (start..2000).step_by(4) {
                    assert_eq!(t.get(&k(i)).unwrap(), Some(v(i)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn bulk_fill_matches_insert_built_tree() {
        let n = 20_000u32;
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..n).map(|i| (k(i), v(i))).collect();
        let bulk = tree();
        bulk.bulk_fill(entries.clone()).unwrap();
        let inserted = tree();
        for (key, value) in &entries {
            inserted.insert(key, value).unwrap();
        }
        // Same content, same order.
        assert_eq!(bulk.len().unwrap(), n as usize);
        for i in (0..n).step_by(97) {
            assert_eq!(bulk.get(&k(i)).unwrap(), Some(v(i)));
        }
        let a: Vec<_> = bulk
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let b: Vec<_> = inserted
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_fill_stamps_node_levels() {
        // Regression: bulk_fill used to leave internal nodes at aux level 0,
        // so a later root split would compute the wrong root level and
        // check_invariants() rejected any bulk-built multi-level tree.
        let t = tree();
        t.bulk_fill((0..160_000u32).map(|i| (k(i), v(i)))).unwrap();
        let c = t.check_invariants().unwrap();
        assert!(c.depth >= 3, "want a tree with interior levels, got {c:?}");
        // Keep growing it through the incremental path; levels must stay
        // consistent through subsequent root splits too.
        for i in 160_000u32..170_000 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_fill_packs_pages_denser_than_sorted_inserts() {
        let n = 20_000u32;
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..n).map(|i| (k(i), v(i))).collect();
        let pool_bulk = Arc::new(BufferPool::new(Box::new(MemPager::new()), 64));
        let bulk = BTree::create(Arc::clone(&pool_bulk)).unwrap();
        bulk.bulk_fill(entries.clone()).unwrap();
        let pages_bulk = pool_bulk.page_count();
        let pool_ins = Arc::new(BufferPool::new(Box::new(MemPager::new()), 64));
        let ins = BTree::create(Arc::clone(&pool_ins)).unwrap();
        for (key, value) in &entries {
            ins.insert(key, value).unwrap();
        }
        let pages_ins = pool_ins.page_count();
        assert!(
            (pages_bulk as f64) < (pages_ins as f64) * 0.7,
            "bulk {pages_bulk} pages should be well under insert-built {pages_ins}"
        );
    }

    #[test]
    fn bulk_fill_small_and_empty() {
        let t = tree();
        t.bulk_fill(Vec::<(Vec<u8>, Vec<u8>)>::new()).unwrap();
        assert_eq!(t.len().unwrap(), 0);
        // Still usable afterwards.
        t.insert(b"a", b"1").unwrap();
        assert_eq!(t.get(b"a").unwrap(), Some(b"1".to_vec()));

        let t = tree();
        t.bulk_fill(vec![(b"k".to_vec(), b"v".to_vec())]).unwrap();
        assert_eq!(t.get(b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn bulk_fill_then_normal_inserts_and_deletes() {
        let t = tree();
        t.bulk_fill((0..5000u32).map(|i| (k(i * 2), v(i)))).unwrap();
        // Interleave new odd keys through the packed leaves.
        for i in 0..2000u32 {
            t.insert(&k(i * 2 + 1), b"odd").unwrap();
        }
        assert_eq!(t.len().unwrap(), 7000);
        assert_eq!(t.get(&k(1001)).unwrap(), Some(b"odd".to_vec()));
        assert_eq!(t.get(&k(2000)).unwrap(), Some(v(1000)));
        assert!(t.delete(&k(2000)).unwrap());
        assert_eq!(t.get(&k(2000)).unwrap(), None);
    }

    #[test]
    fn bulk_fill_rejects_bad_input() {
        // Non-ascending keys.
        let t = tree();
        assert!(matches!(
            t.bulk_fill(vec![
                (b"b".to_vec(), b"1".to_vec()),
                (b"a".to_vec(), b"2".to_vec()),
            ]),
            Err(StoreError::Corrupt(_))
        ));
        // Duplicate keys.
        let t = tree();
        assert!(t
            .bulk_fill(vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"a".to_vec(), b"2".to_vec()),
            ])
            .is_err());
        // Non-empty tree.
        let t = tree();
        t.insert(b"x", b"y").unwrap();
        assert!(matches!(
            t.bulk_fill(vec![(b"a".to_vec(), b"1".to_vec())]),
            Err(StoreError::Corrupt(_))
        ));
        // Oversized entry.
        let t = tree();
        assert!(matches!(
            t.bulk_fill(vec![(b"k".to_vec(), vec![0u8; MAX_ENTRY + 1])]),
            Err(StoreError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn bulk_fill_root_id_stable_and_persistent() {
        let mut path = std::env::temp_dir();
        path.push(format!("fm-store-bulk-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let root;
        {
            let pool = Arc::new(BufferPool::new(
                Box::new(crate::pager::FilePager::open(&path).unwrap()),
                64,
            ));
            let t = BTree::create(Arc::clone(&pool)).unwrap();
            root = t.root();
            t.bulk_fill((0..8000u32).map(|i| (k(i), v(i)))).unwrap();
            assert_eq!(t.root(), root);
            pool.flush().unwrap();
        }
        {
            let pool = Arc::new(BufferPool::new(
                Box::new(crate::pager::FilePager::open(&path).unwrap()),
                64,
            ));
            let t = BTree::open(pool, root);
            assert_eq!(t.len().unwrap(), 8000);
            assert_eq!(t.get(&k(4321)).unwrap(), Some(v(4321)));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_fault_during_insert_surfaces() {
        use crate::pager::{FaultPager, MemPager};
        let pool = Arc::new(BufferPool::new(
            Box::new(FaultPager::new(MemPager::new(), 200)),
            8, // small pool forces I/O traffic
        ));
        let t = BTree::create(pool).unwrap();
        let mut failed = false;
        for i in 0..100_000 {
            match t.insert(&k(i), &v(i)) {
                Ok(_) => {}
                Err(StoreError::InjectedFault) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failed, "fault budget should have been exhausted");
    }

    /// A tree deep enough to have internal nodes, plus its pool for
    /// corruption surgery.
    fn split_tree(n: u32) -> (Arc<BufferPool>, BTree) {
        let pool = Arc::new(BufferPool::new(Box::new(MemPager::new()), 64));
        let t = BTree::create(Arc::clone(&pool)).unwrap();
        for i in 0..n {
            t.insert(&k(i), &v(i)).unwrap();
        }
        (pool, t)
    }

    #[test]
    fn check_invariants_accepts_healthy_trees() {
        // Empty tree.
        let t = tree();
        let c = t.check_invariants().unwrap();
        assert_eq!(
            (c.depth, c.leaf_pages, c.internal_pages, c.entries),
            (1, 1, 0, 0)
        );
        // Multi-level tree, including after deletions (underfull leaves are
        // legal) and upserts.
        let (_pool, t) = split_tree(5000);
        for i in (0..5000).step_by(3) {
            t.delete(&k(i)).unwrap();
        }
        t.insert(&k(17), b"rewritten").unwrap();
        let c = t.check_invariants().unwrap();
        assert!(c.depth >= 2, "{c:?}");
        assert!(c.internal_pages >= 1);
        assert_eq!(c.entries, t.len().unwrap());
        assert!(c.leaf_live_bytes > 0);
    }

    #[test]
    fn check_invariants_detects_key_disorder_in_leaf() {
        let (pool, t) = split_tree(0);
        t.insert(b"bbb", b"v").unwrap();
        // Smuggle an out-of-order cell into the leaf behind the tree's back.
        {
            let mut page = pool.get_mut(t.root()).unwrap();
            let mut sp = SlottedPageMut::new(&mut page);
            sp.insert_at(1, &leaf_cell(b"aaa", b"v")).unwrap();
        }
        let err = t.check_invariants().unwrap_err();
        assert!(err.to_string().contains("out of order"), "{err}");
    }

    #[test]
    fn check_invariants_detects_broken_sibling_link() {
        let (pool, t) = split_tree(3000);
        // Sever the leftmost leaf's right-sibling pointer.
        let leftmost = {
            let page = pool.get(t.root()).unwrap();
            let sp = SlottedPage::new(&page);
            assert_eq!(sp.page_type().unwrap(), PageType::BTreeInternal);
            sp.next_page()
        };
        let first_leaf = {
            // Walk down to level 0.
            let mut id = leftmost;
            loop {
                let page = pool.get(id).unwrap();
                let sp = SlottedPage::new(&page);
                if sp.page_type().unwrap() == PageType::BTreeLeaf {
                    break id;
                }
                id = sp.next_page();
            }
        };
        {
            let mut page = pool.get_mut(first_leaf).unwrap();
            SlottedPageMut::new(&mut page).set_next_page(PageId::NONE);
        }
        let err = t.check_invariants().unwrap_err();
        assert!(err.to_string().contains("sibling link"), "{err}");
    }

    #[test]
    fn check_invariants_detects_wrong_child_level() {
        let (pool, t) = split_tree(3000);
        let leftmost_leaf = {
            let mut id = t.root();
            loop {
                let page = pool.get(id).unwrap();
                let sp = SlottedPage::new(&page);
                if sp.page_type().unwrap() == PageType::BTreeLeaf {
                    break id;
                }
                id = sp.next_page();
            }
        };
        {
            let mut page = pool.get_mut(leftmost_leaf).unwrap();
            SlottedPageMut::new(&mut page).set_aux(7);
        }
        let err = t.check_invariants().unwrap_err();
        assert!(err.to_string().contains("level"), "{err}");
    }

    #[test]
    fn check_invariants_detects_separator_bound_violation() {
        let (pool, t) = split_tree(3000);
        // Put a key that belongs far to the right into the leftmost leaf.
        let leftmost_leaf = {
            let mut id = t.root();
            loop {
                let page = pool.get(id).unwrap();
                let sp = SlottedPage::new(&page);
                if sp.page_type().unwrap() == PageType::BTreeLeaf {
                    break id;
                }
                id = sp.next_page();
            }
        };
        {
            let mut page = pool.get_mut(leftmost_leaf).unwrap();
            let mut sp = SlottedPageMut::new(&mut page);
            let n = sp.view().slot_count();
            sp.insert_at(n, &leaf_cell(b"zzzz-way-out-of-range", b"v"))
                .unwrap();
        }
        let err = t.check_invariants().unwrap_err();
        assert!(err.to_string().contains("bound"), "{err}");
    }
}
