//! Sharded buffer pool with clock (second-chance) eviction.
//!
//! The pool caches a fixed number of [`PAGE_SIZE`] frames over a [`Pager`]
//! and hands out pinned read/write guards. It is safe for concurrent use
//! and built so *readers of resident pages never serialize behind IO*:
//!
//! * frames are partitioned into shards; each shard owns its own mapping
//!   table, pin counts and clock hand behind its own mutex, and a page
//!   lives in exactly one shard (`page % shards`), so the hit path of two
//!   threads touching different shards shares no lock at all;
//! * each frame's bytes live behind their own `RwLock`, so readers of
//!   distinct pages (and multiple readers of one page) proceed in parallel;
//! * a pinned frame (pin count > 0) is never chosen as an eviction victim,
//!   which is what makes the lock order (shard → frame) deadlock-free:
//!   the pool only takes a frame lock for frames with zero pins, and guards
//!   only take the shard lock on drop, when their own frame's pin count is
//!   still positive.
//!
//! # The miss path never holds a shard lock across IO
//!
//! A miss installs the new mapping with the frame marked *loading*, takes
//! the frame's write latch, **releases the shard mutex**, and only then
//! performs the eviction write-back and the fault-in read — holding
//! nothing but the per-frame latch, which only threads wanting that very
//! page can contend on. Hits in the same shard proceed concurrently with
//! the fault. A thread that finds the page it wants mid-load parks on the
//! frame latch (released when the loader finishes) and retries its map
//! lookup, so it can never observe partially-loaded bytes; if the load
//! failed, the retry misses and the waiter becomes the next loader.
//!
//! This retires the old single-mutex design's documented
//! "miss IO under the pool lock" trade-off (the `lock-across-io` analyze
//! rule now holds here with no allowances): page faults serialize only
//! per frame, not per pool.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::error::{Result, StoreError};
use crate::lockorder;
use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Pager;

/// Shards are only worth their mapping-table split once each still holds a
/// healthy number of frames; below 2 shards worth of [`MIN_SHARD_FRAMES`]
/// the pool stays unsharded (identical behaviour to the historical single
/// mutex, minus the IO-under-lock).
const MAX_SHARDS: usize = 8;
const MIN_SHARD_FRAMES: usize = 16;

/// Transient all-pinned sweeps retry this many times (yielding between
/// attempts) before reporting [`StoreError::PoolExhausted`]: under
/// concurrent lookups a shard is routinely "full" for the microseconds in
/// which every resident frame is pinned by an in-flight B+-tree descent.
const EXHAUSTED_RETRIES: usize = 256;

struct Frame {
    data: RwLock<Box<[u8]>>,
    dirty: AtomicBool,
}

#[derive(Clone, Copy, Default)]
struct FrameMeta {
    page: Option<PageId>,
    pins: usize,
    ref_bit: bool,
    /// Set while a faulting thread owns the frame's write latch and is
    /// doing the miss IO outside the shard lock. Loading frames carry the
    /// loader's pin, so the clock sweep never selects them.
    loading: bool,
}

struct ShardState {
    /// Page → index *within this shard* (add the shard base for the
    /// global frame index).
    map: HashMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    clock: usize,
}

struct Shard {
    /// First global frame index owned by this shard.
    base: usize,
    state: Mutex<ShardState>,
}

/// Cumulative buffer pool counters (monotonic; read with [`BufferPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

/// IO accounting for a whole store: buffer-pool traffic plus physical page
/// and WAL IO beneath it. All counters are cumulative and monotonic; read a
/// snapshot with [`BufferPool::store_stats`] (or `Database::stats`) and
/// subtract two snapshots to attribute IO to a window of work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Page requests satisfied from a resident frame.
    pub hits: u64,
    /// Page requests that faulted (allocation of a fresh page included).
    pub misses: u64,
    /// Frames whose previous page was displaced to make room.
    pub evictions: u64,
    /// Pages physically read from the pager (misses that hit the store;
    /// fresh allocations fault in without a read).
    pub pages_read: u64,
    /// Pages physically written to the pager (eviction write-backs and
    /// flushes of dirty frames).
    pub pages_written: u64,
    /// Cumulative bytes appended to the write-ahead log (0 without a WAL).
    pub wal_bytes: u64,
}

/// A sharded buffer pool over a [`Pager`]. See the module docs for the
/// concurrency contract.
pub struct BufferPool {
    pager: Box<dyn Pager>,
    frames: Vec<Frame>,
    shards: Vec<Shard>,
    /// Frames per shard (the last shard additionally absorbs the
    /// remainder).
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    reads: AtomicU64,
}

impl BufferPool {
    /// A pool of `capacity` frames over `pager`. Capacity must be at least 2
    /// (the B+-tree pins a parent and a child simultaneously; callers
    /// typically want far more).
    pub fn new(pager: Box<dyn Pager>, capacity: usize) -> BufferPool {
        assert!(capacity >= 2, "buffer pool needs at least 2 frames");
        let frames: Vec<Frame> = (0..capacity)
            .map(|_| Frame {
                data: RwLock::new(vec![0u8; PAGE_SIZE].into_boxed_slice()),
                dirty: AtomicBool::new(false),
            })
            .collect();
        let num_shards = (capacity / MIN_SHARD_FRAMES).clamp(1, MAX_SHARDS);
        let per_shard = capacity / num_shards;
        let shards = (0..num_shards)
            .map(|s| {
                let base = s * per_shard;
                let len = if s + 1 == num_shards {
                    capacity - base
                } else {
                    per_shard
                };
                Shard {
                    base,
                    state: Mutex::new(ShardState {
                        map: HashMap::new(),
                        meta: vec![FrameMeta::default(); len],
                        clock: 0,
                    }),
                }
            })
            .collect();
        BufferPool {
            pager,
            frames,
            shards,
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            reads: AtomicU64::new(0),
        }
    }

    /// Number of pages in the underlying store.
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Number of shards the frame set is partitioned into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cumulative hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Full IO accounting: pool counters plus the pager's physical IO.
    pub fn store_stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            pages_read: self.reads.load(Ordering::Relaxed),
            pages_written: self.writebacks.load(Ordering::Relaxed),
            wal_bytes: self.pager.wal_bytes(),
        }
    }

    /// The shard a page hashes to.
    fn shard_of_page(&self, id: PageId) -> &Shard {
        &self.shards[id.0 as usize % self.shards.len()]
    }

    /// The shard owning global frame `idx`.
    fn shard_of_frame(&self, idx: usize) -> &Shard {
        &self.shards[(idx / self.per_shard).min(self.shards.len() - 1)]
    }

    /// Pin the frame holding `id`, faulting it in if needed. Returns the
    /// global frame index with the pin count already incremented.
    ///
    /// The miss path does its IO holding only the victim frame's write
    /// latch — never the shard mutex (see the module docs for the
    /// loading-flag protocol and the deadlock-freedom argument).
    fn pin_frame(&self, id: PageId, load: bool) -> Result<usize> {
        let shard = self.shard_of_page(id);
        let mut stalls = 0usize;
        loop {
            let _rank = lockorder::HeldRank::acquire(lockorder::STATE, "state");
            let mut st = shard.state.lock();
            if let Some(&local) = st.map.get(&id) {
                if !st.meta[local].loading {
                    st.meta[local].pins += 1;
                    st.meta[local].ref_bit = true;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(shard.base + local);
                }
                // Another thread is faulting this page in. Park on the
                // frame latch (the loader holds it until the bytes are
                // ready) with no shard lock held, then re-check the map:
                // on success the retry hits, on loader failure the retry
                // misses and this thread becomes the loader.
                let gidx = shard.base + local;
                drop(st);
                drop(_rank);
                {
                    let _frame_rank = lockorder::HeldRank::acquire(lockorder::FRAME, "frame-data");
                    drop(self.frames[gidx].data.read());
                }
                // The loader publishes (clears `loading`) only after
                // releasing its write latch, so a waiter can wake a beat
                // early; yield to keep that window from busy-spinning.
                std::thread::yield_now();
                continue;
            }
            self.misses.fetch_add(1, Ordering::Relaxed);

            // Clock sweep for an unpinned victim (loading frames carry
            // the loader's pin and are skipped automatically).
            let n = st.meta.len();
            let mut victim = None;
            for _ in 0..2 * n {
                let local = st.clock;
                st.clock = (st.clock + 1) % n;
                let m = &mut st.meta[local];
                if m.pins > 0 {
                    continue;
                }
                if m.page.is_none() {
                    victim = Some(local);
                    break;
                }
                if m.ref_bit {
                    m.ref_bit = false;
                } else {
                    victim = Some(local);
                    break;
                }
            }
            let Some(local) = victim else {
                // Every frame pinned right now. In-flight B+-tree descents
                // unpin within microseconds, so yield and retry before
                // declaring the shard exhausted.
                drop(st);
                drop(_rank);
                stalls += 1;
                if stalls > EXHAUSTED_RETRIES {
                    return Err(StoreError::PoolExhausted);
                }
                std::thread::yield_now();
                continue;
            };
            let gidx = shard.base + local;

            // Claim the victim: displace its old mapping, install ours
            // marked loading, and take the frame latch. The latch is
            // uncontended modulo a reader mid-drop that already unpinned
            // (it releases without re-taking any lock, so blocking on it
            // here cannot deadlock).
            let old_page = st.meta[local].page;
            if let Some(old_id) = old_page {
                st.map.remove(&old_id);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            st.meta[local] = FrameMeta {
                page: Some(id),
                pins: 1,
                ref_bit: true,
                loading: true,
            };
            st.map.insert(id, local);
            // FRAME nests inside STATE here (50 < 55); the token must be
            // dropped explicitly before the publish re-acquisition below,
            // or re-taking STATE under it would assert.
            let _frame_rank = lockorder::HeldRank::acquire(lockorder::FRAME, "frame-data");
            let mut data = self.frames[gidx].data.write();
            drop(st);
            drop(_rank);

            // IO with no shard lock held: write back the displaced page
            // (its bytes are still in the frame), then fault ours in.
            let mut wrote_back_old = false;
            let io = (|| -> Result<()> {
                if let Some(old_id) = old_page {
                    if self.frames[gidx].dirty.swap(false, Ordering::AcqRel) {
                        // lint:allow(lock-across-io): per-frame latch only, by design
                        if let Err(e) = self.pager.write_page(old_id, &data) {
                            self.frames[gidx].dirty.store(true, Ordering::Release);
                            return Err(e);
                        }
                        self.writebacks.fetch_add(1, Ordering::Relaxed);
                    }
                    wrote_back_old = true;
                }
                if load {
                    self.reads.fetch_add(1, Ordering::Relaxed);
                    // lint:allow(lock-across-io): per-frame latch only, by design
                    self.pager.read_page(id, &mut data)
                } else {
                    data.fill(0);
                    Ok(())
                }
            })();
            // Frame latch released before re-taking the shard lock (the
            // canonical order is shard state before frame data, never the
            // reverse); waiters it wakes re-check the map and loop until
            // the publish below lands.
            drop(data);
            drop(_frame_rank);

            // Publish (or roll back) under the shard lock.
            let _rank = lockorder::HeldRank::acquire(lockorder::STATE, "state");
            let mut st = shard.state.lock();
            match io {
                Ok(()) => {
                    st.meta[local].loading = false;
                    return Ok(gidx);
                }
                Err(e) => {
                    st.map.remove(&id);
                    if let (Some(old_id), false) = (old_page, wrote_back_old) {
                        // The write-back failed before the frame was
                        // overwritten: restore the old mapping so the
                        // dirty page is not lost.
                        st.map.insert(old_id, local);
                        st.meta[local] = FrameMeta {
                            page: Some(old_id),
                            pins: 0,
                            ref_bit: false,
                            loading: false,
                        };
                        self.evictions.fetch_sub(1, Ordering::Relaxed);
                    } else {
                        st.meta[local] = FrameMeta::default();
                    }
                    return Err(e);
                }
            }
        }
    }

    fn unpin(&self, idx: usize) {
        let shard = self.shard_of_frame(idx);
        let _rank = lockorder::HeldRank::acquire(lockorder::STATE, "state");
        let mut st = shard.state.lock();
        let local = idx - shard.base;
        debug_assert!(st.meta[local].pins > 0, "unpin without pin");
        st.meta[local].pins -= 1;
    }

    /// Shared read access to page `id`.
    pub fn get(&self, id: PageId) -> Result<PageRef<'_>> {
        let idx = self.pin_frame(id, true)?;
        let guard = self.frames[idx].data.read();
        Ok(PageRef {
            pool: self,
            idx,
            guard,
        })
    }

    /// Exclusive write access to page `id`. The frame is marked dirty.
    pub fn get_mut(&self, id: PageId) -> Result<PageMut<'_>> {
        let idx = self.pin_frame(id, true)?;
        let guard = self.frames[idx].data.write();
        self.frames[idx].dirty.store(true, Ordering::Release);
        Ok(PageMut {
            pool: self,
            idx,
            guard,
        })
    }

    /// Allocate a fresh page and return it write-pinned and zeroed.
    pub fn allocate(&self) -> Result<(PageId, PageMut<'_>)> {
        let id = self.pager.allocate()?;
        let idx = self.pin_frame(id, false)?;
        let guard = self.frames[idx].data.write();
        self.frames[idx].dirty.store(true, Ordering::Release);
        Ok((
            id,
            PageMut {
                pool: self,
                idx,
                guard,
            },
        ))
    }

    /// Write all dirty frames back and fsync the pager.
    pub fn flush(&self) -> Result<()> {
        // Shard by shard: snapshot the resident pages, then write each one
        // back under a pin (so the frame cannot be repurposed for another
        // page between the snapshot and the write) and only the per-frame
        // read latch — in-flight writers block on one frame, never the
        // shard, and re-dirtying is preserved on failure.
        for shard in &self.shards {
            let mapping: Vec<(usize, PageId)> = {
                let _rank = lockorder::HeldRank::acquire(lockorder::STATE, "state");
                let mut st = shard.state.lock();
                let resident: Vec<(usize, PageId)> = st
                    .meta
                    .iter()
                    .enumerate()
                    .filter_map(|(i, m)| {
                        if m.loading {
                            None
                        } else {
                            m.page.map(|p| (i, p))
                        }
                    })
                    .collect();
                for &(local, _) in &resident {
                    st.meta[local].pins += 1;
                }
                resident
            };
            let mut failure = None;
            for &(local, page) in &mapping {
                let gidx = shard.base + local;
                if failure.is_none() && self.frames[gidx].dirty.swap(false, Ordering::AcqRel) {
                    let _frame_rank = lockorder::HeldRank::acquire(lockorder::FRAME, "frame-data");
                    let data = self.frames[gidx].data.read();
                    // lint:allow(lock-across-io): per-frame latch only, by design
                    if let Err(e) = self.pager.write_page(page, &data) {
                        self.frames[gidx].dirty.store(true, Ordering::Release);
                        failure = Some(e);
                    } else {
                        self.writebacks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            {
                let _rank = lockorder::HeldRank::acquire(lockorder::STATE, "state");
                let mut st = shard.state.lock();
                for &(local, _) in &mapping {
                    debug_assert!(st.meta[local].pins > 0, "flush unpin without pin");
                    st.meta[local].pins -= 1;
                }
            }
            if let Some(e) = failure {
                return Err(e);
            }
        }
        self.pager.sync()
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Best-effort durability on drop; callers that care about errors
        // call `flush` explicitly.
        let _ = self.flush();
    }
}

/// Pinned shared view of a page. Derefs to the page bytes.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    idx: usize,
    guard: RwLockReadGuard<'a, Box<[u8]>>,
}

impl Deref for PageRef<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.idx);
    }
}

/// Pinned exclusive view of a page. Derefs to the page bytes; the frame is
/// written back lazily on eviction or flush.
pub struct PageMut<'a> {
    pool: &'a BufferPool,
    idx: usize,
    guard: RwLockWriteGuard<'a, Box<[u8]>>,
}

impl Deref for PageMut<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

impl DerefMut for PageMut<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.guard
    }
}

impl Drop for PageMut<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::{FaultPager, FilePager, MemPager};

    fn mem_pool(frames: usize) -> BufferPool {
        BufferPool::new(Box::new(MemPager::new()), frames)
    }

    #[test]
    fn allocate_read_write_round_trip() {
        let pool = mem_pool(4);
        let id = {
            let (id, mut page) = pool.allocate().unwrap();
            page[0] = 11;
            page[PAGE_SIZE - 1] = 22;
            id
        };
        let page = pool.get(id).unwrap();
        assert_eq!(page[0], 11);
        assert_eq!(page[PAGE_SIZE - 1], 22);
    }

    #[test]
    fn small_pools_are_unsharded_and_large_pools_shard() {
        assert_eq!(mem_pool(2).shard_count(), 1);
        assert_eq!(mem_pool(31).shard_count(), 1);
        assert_eq!(mem_pool(32).shard_count(), 2);
        assert_eq!(mem_pool(64).shard_count(), 4);
        assert_eq!(mem_pool(4096).shard_count(), MAX_SHARDS);
    }

    #[test]
    fn every_frame_belongs_to_exactly_one_shard() {
        // Covers the remainder-absorbing last shard: meta lengths sum to
        // capacity and shard_of_frame round-trips every index.
        for capacity in [2, 17, 32, 33, 63, 64, 100, 129] {
            let pool = mem_pool(capacity);
            let total: usize = pool.shards.iter().map(|s| s.state.lock().meta.len()).sum();
            assert_eq!(total, capacity, "capacity {capacity}");
            for idx in 0..capacity {
                let shard = pool.shard_of_frame(idx);
                let local = idx - shard.base;
                assert!(
                    local < shard.state.lock().meta.len(),
                    "frame {idx} out of shard bounds at capacity {capacity}"
                );
            }
        }
    }

    #[test]
    fn eviction_preserves_data() {
        let pool = mem_pool(2);
        // Write 10 pages through a 2-frame pool, forcing evictions.
        let ids: Vec<PageId> = (0..10u8)
            .map(|i| {
                let (id, mut page) = pool.allocate().unwrap();
                page.fill(i);
                id
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let page = pool.get(id).unwrap();
            assert!(page.iter().all(|&b| b == i as u8), "page {id} corrupted");
        }
        let stats = pool.stats();
        assert!(stats.evictions > 0);
        assert!(stats.writebacks > 0);
    }

    #[test]
    fn hit_and_miss_accounting() {
        let pool = mem_pool(4);
        let (id, _) = {
            let (id, g) = pool.allocate().unwrap();
            drop(g);
            (id, ())
        };
        let before = pool.stats();
        let _ = pool.get(id).unwrap(); // hit: still resident
        let after = pool.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn store_stats_tracks_physical_io_and_wal() {
        use crate::wal::WalPager;
        let mut path = std::env::temp_dir();
        path.push(format!("fm-store-buffer-stats-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        {
            let pool = BufferPool::new(Box::new(WalPager::open(&path).unwrap()), 2);
            // 6 pages through a 2-frame pool: evictions write to the WAL.
            let ids: Vec<PageId> = (0..6u8)
                .map(|i| {
                    let (id, mut p) = pool.allocate().unwrap();
                    p.fill(i);
                    id
                })
                .collect();
            for &id in &ids {
                let _ = pool.get(id).unwrap();
            }
            pool.flush().unwrap();
            let s = pool.store_stats();
            assert_eq!(s.misses, pool.stats().misses);
            assert!(s.pages_read >= 4, "re-reads of evicted pages: {s:?}");
            assert!(s.pages_written >= 6, "every page written once: {s:?}");
            assert!(
                s.wal_bytes >= s.pages_written * PAGE_SIZE as u64,
                "all writes go through the WAL: {s:?}"
            );
            // Fresh allocations fault in without physical reads.
            assert!(s.pages_read <= s.misses);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pool_exhausted_when_all_pinned() {
        let pool = mem_pool(2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        // Both frames pinned; a third page cannot be faulted in.
        let err = pool.allocate();
        assert!(matches!(err, Err(StoreError::PoolExhausted)));
        drop(a);
        drop(b);
        // After unpinning, allocation succeeds again.
        assert!(pool.allocate().is_ok());
    }

    #[test]
    fn multiple_readers_share_a_page() {
        let pool = mem_pool(4);
        let (id, g) = pool.allocate().unwrap();
        drop(g);
        let r1 = pool.get(id).unwrap();
        let r2 = pool.get(id).unwrap();
        assert_eq!(r1[0], r2[0]);
    }

    #[test]
    fn flush_persists_to_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("fm-store-buffer-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let pool = BufferPool::new(Box::new(FilePager::open(&path).unwrap()), 4);
            let (id, mut page) = pool.allocate().unwrap();
            assert_eq!(id, PageId(0));
            page[100] = 42;
            drop(page);
            pool.flush().unwrap();
        }
        {
            let pool = BufferPool::new(Box::new(FilePager::open(&path).unwrap()), 4);
            let page = pool.get(PageId(0)).unwrap();
            assert_eq!(page[100], 42);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_fault_surfaces_and_pool_stays_usable() {
        // Budget of exactly one pager op: the first allocation consumes it.
        let pool = BufferPool::new(Box::new(FaultPager::new(MemPager::new(), 1)), 4);
        let (id, g) = pool.allocate().unwrap(); // allocate = the only op
        drop(g);
        let _ = pool.get(id).unwrap(); // cache hit, no I/O
        assert!(matches!(pool.allocate(), Err(StoreError::InjectedFault)));
        // The earlier page is still readable from cache after the fault.
        assert!(pool.get(id).is_ok());
    }

    #[test]
    fn failed_eviction_writeback_rolls_back_and_keeps_victim() {
        // Ops 1-2: allocate a, b (fresh pages fault in without IO). Op 3:
        // the third allocate itself; its eviction write-back of dirty `a`
        // is op 4 — refused. The miss must roll back: `a` stays resident
        // and dirty, nothing is left in a stuck `loading` state.
        let pool = BufferPool::new(Box::new(FaultPager::new(MemPager::new(), 3)), 2);
        let (a, mut g) = pool.allocate().unwrap(); // op 1
        g.fill(0xAA);
        drop(g);
        let (b, mut g) = pool.allocate().unwrap(); // op 2
        g.fill(0xBB);
        drop(g);
        assert!(matches!(pool.allocate(), Err(StoreError::InjectedFault)));
        // Rollback restored the victim's mapping: both pages still hit in
        // cache (zero pager budget left) with their bytes intact.
        assert!(pool.get(a).unwrap().iter().all(|&x| x == 0xAA));
        assert!(pool.get(b).unwrap().iter().all(|&x| x == 0xBB));
        // And a repeat attempt fails the same clean way instead of
        // hanging on a stale loading frame.
        assert!(matches!(pool.allocate(), Err(StoreError::InjectedFault)));
    }

    #[test]
    fn failed_fault_in_leaves_no_stale_mapping() {
        // Budget: alloc a (1), alloc b (2), flush writes both (3, 4) and
        // syncs (5) — leaving clean frames and 1 op. Alloc c (op 6, clean
        // victim → no write-back) displaces `a`; re-reading `a` then needs
        // a physical read the exhausted pager refuses. The failed load
        // must clear its mapping so retries fail cleanly, not hang.
        let pool = BufferPool::new(Box::new(FaultPager::new(MemPager::new(), 6)), 2);
        let (a, g) = pool.allocate().unwrap(); // op 1
        drop(g);
        let (_b, g) = pool.allocate().unwrap(); // op 2
        drop(g);
        pool.flush().unwrap(); // ops 3-5 (two writes + sync)
        let (_c, g) = pool.allocate().unwrap(); // op 6, evicts clean `a`
        drop(g);
        assert!(matches!(pool.get(a), Err(StoreError::InjectedFault)));
        assert!(matches!(pool.get(a), Err(StoreError::InjectedFault)));
    }

    #[test]
    fn concurrent_mixed_workload() {
        use std::sync::Arc;
        let pool = Arc::new(mem_pool(8));
        let ids: Vec<PageId> = (0..16)
            .map(|i| {
                let (id, mut p) = pool.allocate().unwrap();
                p.fill(i as u8);
                id
            })
            .collect();
        let ids = Arc::new(ids);
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let ids = Arc::clone(&ids);
            handles.push(std::thread::spawn(move || {
                for round in 0..200 {
                    let i = (t * 7 + round * 13) % ids.len();
                    if round % 5 == 0 {
                        let mut p = pool.get_mut(ids[i]).unwrap();
                        let v = p[0];
                        p.fill(v); // idempotent write keeps the invariant
                    } else {
                        let p = pool.get(ids[i]).unwrap();
                        let v = p[0];
                        assert!(p.iter().all(|&b| b == v), "torn page");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_miss_storm_on_one_page_loads_once_coherently() {
        // 8 threads fault the same evicted pages simultaneously: the
        // loading protocol must hand every waiter coherent bytes, and
        // repeated rounds (with evictions between) must never tear.
        use std::sync::Arc;
        let pool = Arc::new(mem_pool(4));
        let ids: Vec<PageId> = (0..64)
            .map(|i| {
                let (id, mut p) = pool.allocate().unwrap();
                p.fill(i as u8);
                id
            })
            .collect();
        let ids = Arc::new(ids);
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for t in 0..8usize {
            let pool = Arc::clone(&pool);
            let ids = Arc::clone(&ids);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for round in 0..100 {
                    // All threads converge on the same page each round,
                    // with enough distinct pages to force re-faults.
                    let i = (round * 31 + t / 4) % ids.len();
                    let p = pool.get(ids[i]).unwrap();
                    let v = p[0];
                    assert_eq!(v, i as u8, "wrong page content after fault");
                    assert!(p.iter().all(|&b| b == v), "torn fault-in");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every byte still intact single-threaded.
        for (i, &id) in ids.iter().enumerate() {
            let p = pool.get(id).unwrap();
            assert!(p.iter().all(|&b| b == i as u8));
        }
    }
}
