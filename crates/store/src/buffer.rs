//! Buffer pool with clock (second-chance) eviction.
//!
//! The pool caches a fixed number of [`PAGE_SIZE`] frames over a [`Pager`]
//! and hands out pinned read/write guards. It is safe for concurrent use:
//!
//! * the mapping table, pin counts and clock hand live behind one mutex;
//! * each frame's bytes live behind their own `RwLock`, so readers of
//!   distinct pages (and multiple readers of one page) proceed in parallel;
//! * a pinned frame (pin count > 0) is never chosen as an eviction victim,
//!   which is what makes the lock order (state → frame) deadlock-free:
//!   the pool only takes a frame lock for frames with zero pins, and guards
//!   only take the state lock on drop, when their own frame's pin count is
//!   still positive.
//!
//! Misses perform their I/O while holding the state mutex. That serializes
//! page faults, which is the honest trade-off of this design — the fuzzy
//! match workload is read-mostly with a high hit rate (the paper's ETI
//! working set is the hot upper levels of the clustered index), and the
//! hit path takes the mutex only briefly.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::error::{Result, StoreError};
use crate::lockorder;
use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Pager;

struct Frame {
    data: RwLock<Box<[u8]>>,
    dirty: AtomicBool,
}

#[derive(Clone, Copy, Default)]
struct FrameMeta {
    page: Option<PageId>,
    pins: usize,
    ref_bit: bool,
}

struct PoolState {
    map: HashMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    clock: usize,
}

/// Cumulative buffer pool counters (monotonic; read with [`BufferPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

/// IO accounting for a whole store: buffer-pool traffic plus physical page
/// and WAL IO beneath it. All counters are cumulative and monotonic; read a
/// snapshot with [`BufferPool::store_stats`] (or `Database::stats`) and
/// subtract two snapshots to attribute IO to a window of work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Page requests satisfied from a resident frame.
    pub hits: u64,
    /// Page requests that faulted (allocation of a fresh page included).
    pub misses: u64,
    /// Frames whose previous page was displaced to make room.
    pub evictions: u64,
    /// Pages physically read from the pager (misses that hit the store;
    /// fresh allocations fault in without a read).
    pub pages_read: u64,
    /// Pages physically written to the pager (eviction write-backs and
    /// flushes of dirty frames).
    pub pages_written: u64,
    /// Cumulative bytes appended to the write-ahead log (0 without a WAL).
    pub wal_bytes: u64,
}

/// A buffer pool over a [`Pager`]. See the module docs for the concurrency
/// contract.
pub struct BufferPool {
    pager: Box<dyn Pager>,
    frames: Vec<Frame>,
    state: Mutex<PoolState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    reads: AtomicU64,
}

impl BufferPool {
    /// A pool of `capacity` frames over `pager`. Capacity must be at least 2
    /// (the B+-tree pins a parent and a child simultaneously; callers
    /// typically want far more).
    pub fn new(pager: Box<dyn Pager>, capacity: usize) -> BufferPool {
        assert!(capacity >= 2, "buffer pool needs at least 2 frames");
        let frames = (0..capacity)
            .map(|_| Frame {
                data: RwLock::new(vec![0u8; PAGE_SIZE].into_boxed_slice()),
                dirty: AtomicBool::new(false),
            })
            .collect();
        BufferPool {
            pager,
            frames,
            state: Mutex::new(PoolState {
                map: HashMap::new(),
                meta: vec![FrameMeta::default(); capacity],
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            reads: AtomicU64::new(0),
        }
    }

    /// Number of pages in the underlying store.
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Cumulative hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Full IO accounting: pool counters plus the pager's physical IO.
    pub fn store_stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            pages_read: self.reads.load(Ordering::Relaxed),
            pages_written: self.writebacks.load(Ordering::Relaxed),
            wal_bytes: self.pager.wal_bytes(),
        }
    }

    /// Pin the frame holding `id`, faulting it in if needed. Returns the
    /// frame index with the pin count already incremented.
    fn pin_frame(&self, id: PageId, load: bool) -> Result<usize> {
        let _rank = lockorder::HeldRank::acquire(lockorder::STATE, "state");
        let mut st = self.state.lock();
        if let Some(&idx) = st.map.get(&id) {
            st.meta[idx].pins += 1;
            st.meta[idx].ref_bit = true;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(idx);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let idx = self.find_victim(&mut st)?;

        // Write back the evicted page first, while its mapping is intact, so
        // a failure leaves the pool consistent.
        if let Some(old_id) = st.meta[idx].page {
            if self.frames[idx].dirty.load(Ordering::Acquire) {
                let data = self.frames[idx].data.read();
                // Eviction writeback under the pool mutex is the documented
                // single-threaded-miss trade-off; the concurrent-read-path
                // refactor (ROADMAP) retires this site.
                // lint:allow(lock-across-io): documented miss-path trade-off
                self.pager.write_page(old_id, &data)?;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            self.frames[idx].dirty.store(false, Ordering::Release);
            st.map.remove(&old_id);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        st.meta[idx] = FrameMeta {
            page: Some(id),
            pins: 1,
            ref_bit: true,
        };
        st.map.insert(id, idx);

        // Pins was 0 and the new mapping is ours, so the frame lock is
        // uncontended.
        let mut data = self.frames[idx].data.write();
        let io = if load {
            self.reads.fetch_add(1, Ordering::Relaxed);
            // Miss fault-in under the pool mutex — same documented trade-off
            // as the eviction writeback above.
            // lint:allow(lock-across-io): documented miss-path trade-off
            self.pager.read_page(id, &mut data)
        } else {
            data.fill(0);
            Ok(())
        };
        if let Err(e) = io {
            st.map.remove(&id);
            st.meta[idx] = FrameMeta::default();
            return Err(e);
        }
        Ok(idx)
    }

    /// Clock sweep for an unpinned victim frame.
    fn find_victim(&self, st: &mut PoolState) -> Result<usize> {
        let n = self.frames.len();
        for _ in 0..2 * n {
            let idx = st.clock;
            st.clock = (st.clock + 1) % n;
            let m = &mut st.meta[idx];
            if m.pins > 0 {
                continue;
            }
            if m.page.is_none() {
                return Ok(idx);
            }
            if m.ref_bit {
                m.ref_bit = false;
            } else {
                return Ok(idx);
            }
        }
        Err(StoreError::PoolExhausted)
    }

    fn unpin(&self, idx: usize) {
        let _rank = lockorder::HeldRank::acquire(lockorder::STATE, "state");
        let mut st = self.state.lock();
        debug_assert!(st.meta[idx].pins > 0, "unpin without pin");
        st.meta[idx].pins -= 1;
    }

    /// Shared read access to page `id`.
    pub fn get(&self, id: PageId) -> Result<PageRef<'_>> {
        let idx = self.pin_frame(id, true)?;
        let guard = self.frames[idx].data.read();
        Ok(PageRef {
            pool: self,
            idx,
            guard,
        })
    }

    /// Exclusive write access to page `id`. The frame is marked dirty.
    pub fn get_mut(&self, id: PageId) -> Result<PageMut<'_>> {
        let idx = self.pin_frame(id, true)?;
        let guard = self.frames[idx].data.write();
        self.frames[idx].dirty.store(true, Ordering::Release);
        Ok(PageMut {
            pool: self,
            idx,
            guard,
        })
    }

    /// Allocate a fresh page and return it write-pinned and zeroed.
    pub fn allocate(&self) -> Result<(PageId, PageMut<'_>)> {
        let id = self.pager.allocate()?;
        let idx = self.pin_frame(id, false)?;
        let guard = self.frames[idx].data.write();
        self.frames[idx].dirty.store(true, Ordering::Release);
        Ok((
            id,
            PageMut {
                pool: self,
                idx,
                guard,
            },
        ))
    }

    /// Write all dirty frames back and fsync the pager.
    pub fn flush(&self) -> Result<()> {
        // Snapshot the mapping, then write back frame by frame taking only
        // the per-frame read lock (writers in flight will simply re-dirty).
        let mapping: Vec<(usize, PageId)> = {
            let _rank = lockorder::HeldRank::acquire(lockorder::STATE, "state");
            let st = self.state.lock();
            st.meta
                .iter()
                .enumerate()
                .filter_map(|(i, m)| m.page.map(|p| (i, p)))
                .collect()
        };
        for (idx, page) in mapping {
            if self.frames[idx].dirty.swap(false, Ordering::AcqRel) {
                let data = self.frames[idx].data.read();
                // Flush deliberately writes back under only the per-frame
                // read lock (pool mutex already released); in-flight writers
                // block on this one frame only.
                // lint:allow(lock-across-io): per-frame lock only, by design
                if let Err(e) = self.pager.write_page(page, &data) {
                    self.frames[idx].dirty.store(true, Ordering::Release);
                    return Err(e);
                }
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.pager.sync()
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Best-effort durability on drop; callers that care about errors
        // call `flush` explicitly.
        let _ = self.flush();
    }
}

/// Pinned shared view of a page. Derefs to the page bytes.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    idx: usize,
    guard: RwLockReadGuard<'a, Box<[u8]>>,
}

impl Deref for PageRef<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.idx);
    }
}

/// Pinned exclusive view of a page. Derefs to the page bytes; the frame is
/// written back lazily on eviction or flush.
pub struct PageMut<'a> {
    pool: &'a BufferPool,
    idx: usize,
    guard: RwLockWriteGuard<'a, Box<[u8]>>,
}

impl Deref for PageMut<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

impl DerefMut for PageMut<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.guard
    }
}

impl Drop for PageMut<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::{FaultPager, FilePager, MemPager};

    fn mem_pool(frames: usize) -> BufferPool {
        BufferPool::new(Box::new(MemPager::new()), frames)
    }

    #[test]
    fn allocate_read_write_round_trip() {
        let pool = mem_pool(4);
        let id = {
            let (id, mut page) = pool.allocate().unwrap();
            page[0] = 11;
            page[PAGE_SIZE - 1] = 22;
            id
        };
        let page = pool.get(id).unwrap();
        assert_eq!(page[0], 11);
        assert_eq!(page[PAGE_SIZE - 1], 22);
    }

    #[test]
    fn eviction_preserves_data() {
        let pool = mem_pool(2);
        // Write 10 pages through a 2-frame pool, forcing evictions.
        let ids: Vec<PageId> = (0..10u8)
            .map(|i| {
                let (id, mut page) = pool.allocate().unwrap();
                page.fill(i);
                id
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let page = pool.get(id).unwrap();
            assert!(page.iter().all(|&b| b == i as u8), "page {id} corrupted");
        }
        let stats = pool.stats();
        assert!(stats.evictions > 0);
        assert!(stats.writebacks > 0);
    }

    #[test]
    fn hit_and_miss_accounting() {
        let pool = mem_pool(4);
        let (id, _) = {
            let (id, g) = pool.allocate().unwrap();
            drop(g);
            (id, ())
        };
        let before = pool.stats();
        let _ = pool.get(id).unwrap(); // hit: still resident
        let after = pool.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn store_stats_tracks_physical_io_and_wal() {
        use crate::wal::WalPager;
        let mut path = std::env::temp_dir();
        path.push(format!("fm-store-buffer-stats-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut wal = path.clone().into_os_string();
        wal.push(".wal");
        let _ = std::fs::remove_file(std::path::PathBuf::from(wal));
        {
            let pool = BufferPool::new(Box::new(WalPager::open(&path).unwrap()), 2);
            // 6 pages through a 2-frame pool: evictions write to the WAL.
            let ids: Vec<PageId> = (0..6u8)
                .map(|i| {
                    let (id, mut p) = pool.allocate().unwrap();
                    p.fill(i);
                    id
                })
                .collect();
            for &id in &ids {
                let _ = pool.get(id).unwrap();
            }
            pool.flush().unwrap();
            let s = pool.store_stats();
            assert_eq!(s.misses, pool.stats().misses);
            assert!(s.pages_read >= 4, "re-reads of evicted pages: {s:?}");
            assert!(s.pages_written >= 6, "every page written once: {s:?}");
            assert!(
                s.wal_bytes >= s.pages_written * PAGE_SIZE as u64,
                "all writes go through the WAL: {s:?}"
            );
            // Fresh allocations fault in without physical reads.
            assert!(s.pages_read <= s.misses);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pool_exhausted_when_all_pinned() {
        let pool = mem_pool(2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        // Both frames pinned; a third page cannot be faulted in.
        let err = pool.allocate();
        assert!(matches!(err, Err(StoreError::PoolExhausted)));
        drop(a);
        drop(b);
        // After unpinning, allocation succeeds again.
        assert!(pool.allocate().is_ok());
    }

    #[test]
    fn multiple_readers_share_a_page() {
        let pool = mem_pool(4);
        let (id, g) = pool.allocate().unwrap();
        drop(g);
        let r1 = pool.get(id).unwrap();
        let r2 = pool.get(id).unwrap();
        assert_eq!(r1[0], r2[0]);
    }

    #[test]
    fn flush_persists_to_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("fm-store-buffer-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let pool = BufferPool::new(Box::new(FilePager::open(&path).unwrap()), 4);
            let (id, mut page) = pool.allocate().unwrap();
            assert_eq!(id, PageId(0));
            page[100] = 42;
            drop(page);
            pool.flush().unwrap();
        }
        {
            let pool = BufferPool::new(Box::new(FilePager::open(&path).unwrap()), 4);
            let page = pool.get(PageId(0)).unwrap();
            assert_eq!(page[100], 42);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_fault_surfaces_and_pool_stays_usable() {
        // Budget of exactly one pager op: the first allocation consumes it.
        let pool = BufferPool::new(Box::new(FaultPager::new(MemPager::new(), 1)), 4);
        let (id, g) = pool.allocate().unwrap(); // allocate = the only op
        drop(g);
        let _ = pool.get(id).unwrap(); // cache hit, no I/O
        assert!(matches!(pool.allocate(), Err(StoreError::InjectedFault)));
        // The earlier page is still readable from cache after the fault.
        assert!(pool.get(id).is_ok());
    }

    #[test]
    fn concurrent_mixed_workload() {
        use std::sync::Arc;
        let pool = Arc::new(mem_pool(8));
        let ids: Vec<PageId> = (0..16)
            .map(|i| {
                let (id, mut p) = pool.allocate().unwrap();
                p.fill(i as u8);
                id
            })
            .collect();
        let ids = Arc::new(ids);
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let ids = Arc::clone(&ids);
            handles.push(std::thread::spawn(move || {
                for round in 0..200 {
                    let i = (t * 7 + round * 13) % ids.len();
                    if round % 5 == 0 {
                        let mut p = pool.get_mut(ids[i]).unwrap();
                        let v = p[0];
                        p.fill(v); // idempotent write keeps the invariant
                    } else {
                        let p = pool.get(ids[i]).unwrap();
                        let v = p[0];
                        assert!(p.iter().all(|&b| b == v), "torn page");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
