//! Slotted pages.
//!
//! Every relation and index in the substrate is stored in fixed-size
//! [`PAGE_SIZE`] pages using the classic slotted layout: a header, a slot
//! directory growing upward, and variable-length cells growing downward from
//! the end of the page.
//!
//! ```text
//! +--------------------+---------------------+.......+------------------+
//! | header (16 bytes)  | slot dir (4 B/slot) | free  | cells            |
//! +--------------------+---------------------+.......+------------------+
//! 0                    16                    ^free    ^free_end      8192
//! ```
//!
//! Two mutation disciplines are offered because the two consumers need
//! different invariants:
//!
//! * heap files use [`SlottedPageMut::push`] / [`SlottedPageMut::mark_deleted`]
//!   — slot ids are stable forever (they are half of a [`crate::heap::Rid`]);
//! * the B+-tree uses [`SlottedPageMut::insert_at`] / [`SlottedPageMut::remove_at`]
//!   — the slot directory is kept sorted by key, so entries shift.

use crate::error::{Result, StoreError};

/// Size of every page in bytes. 8 KiB matches SQL Server's page size — the
/// system the paper was implemented on.
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved for the page header.
pub const HEADER_SIZE: usize = 16;

/// Size of one slot-directory entry (offset u16 + len u16).
const SLOT_SIZE: usize = 4;

/// Sentinel offset marking a dead (deleted) slot.
const DEAD: u16 = u16::MAX;

/// The largest record a single page can store (one slot, empty page).
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// Identifier of a page within a page store. Page 0 is the store header and
/// is never handed out by allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel meaning "no page" (chain terminator).
    pub const NONE: PageId = PageId(u32::MAX);

    #[must_use]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Role of a page, stored in the first header byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageType {
    Free = 0,
    Heap = 1,
    BTreeLeaf = 2,
    BTreeInternal = 3,
    Meta = 4,
}

impl PageType {
    pub fn from_u8(v: u8) -> Result<PageType> {
        Ok(match v {
            0 => PageType::Free,
            1 => PageType::Heap,
            2 => PageType::BTreeLeaf,
            3 => PageType::BTreeInternal,
            4 => PageType::Meta,
            other => return Err(StoreError::Corrupt(format!("bad page type {other}"))),
        })
    }
}

// The four header/slot-directory accessors below index at offsets derived
// from the fixed 16-byte header layout or `HEADER_SIZE + SLOT_SIZE * i`
// with `i < slot_count`, into buffers whose PAGE_SIZE length the
// constructors assert. Every caller sits in this module; an out-of-range
// offset therefore means the *code* is wrong, not the data, which is
// exactly what a panic is for.

#[inline]
fn read_u16(data: &[u8], at: usize) -> u16 {
    // lint:allow(panic-path): fixed header/slot offsets in a PAGE_SIZE buffer
    u16::from_le_bytes([data[at], data[at + 1]])
}

#[inline]
fn write_u16(data: &mut [u8], at: usize, v: u16) {
    // lint:allow(panic-path): fixed header/slot offsets in a PAGE_SIZE buffer
    data[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn read_u32(data: &[u8], at: usize) -> u32 {
    // lint:allow(panic-path): fixed header/slot offsets in a PAGE_SIZE buffer
    u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]])
}

#[inline]
fn write_u32(data: &mut [u8], at: usize, v: u32) {
    // lint:allow(panic-path): fixed header/slot offsets in a PAGE_SIZE buffer
    data[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

/// Read-only view of a slotted page.
#[derive(Clone, Copy)]
pub struct SlottedPage<'a> {
    data: &'a [u8],
}

impl<'a> SlottedPage<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        SlottedPage { data }
    }

    pub fn page_type(&self) -> Result<PageType> {
        // lint:allow(panic-path): byte 0 of a PAGE_SIZE buffer always exists
        PageType::from_u8(self.data[0])
    }

    pub fn slot_count(&self) -> u16 {
        read_u16(self.data, 2)
    }

    /// Offset of the lowest cell (cells occupy `free_end..PAGE_SIZE`).
    fn free_end(&self) -> u16 {
        read_u16(self.data, 6)
    }

    /// The chain field: next heap page / right leaf sibling / leftmost child
    /// of an internal B+-tree node, depending on page type.
    pub fn next_page(&self) -> PageId {
        PageId(read_u32(self.data, 8))
    }

    /// A spare u32 for the page's owner (the B+-tree stores its level here).
    pub fn aux(&self) -> u32 {
        read_u32(self.data, 12)
    }

    /// Bytes of the cell in slot `i`, or `None` if the slot is dead.
    pub fn get(&self, i: u16) -> Option<&'a [u8]> {
        if i >= self.slot_count() {
            return None;
        }
        let at = HEADER_SIZE + SLOT_SIZE * i as usize;
        let off = read_u16(self.data, at);
        if off == DEAD {
            return None;
        }
        let len = read_u16(self.data, at + 2) as usize;
        // Checked: a corrupt cell offset reads as a missing cell, not a
        // process abort — callers treat `None` as a dead slot.
        self.data.get(off as usize..off as usize + len)
    }

    /// Contiguous free bytes available for one more insertion (slot included).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_SIZE + SLOT_SIZE * self.slot_count() as usize;
        let free = self.free_end() as usize - dir_end;
        free.saturating_sub(SLOT_SIZE)
    }

    /// Free bytes that a [`SlottedPageMut::compact`] would make available for
    /// one more insertion: contiguous free space plus dead cell space.
    pub fn free_space_after_compaction(&self) -> usize {
        let live: usize = (0..self.slot_count())
            .filter_map(|i| self.get(i))
            .map(|c| c.len())
            .sum();
        let dir_end = HEADER_SIZE + SLOT_SIZE * self.slot_count() as usize;
        (PAGE_SIZE - dir_end - live).saturating_sub(SLOT_SIZE)
    }

    /// Iterate over `(slot, cell)` pairs of live slots.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &'a [u8])> + '_ {
        let n = self.slot_count();
        (0..n).filter_map(move |i| self.get(i).map(|c| (i, c)))
    }

    /// Validate the page's physical layout invariants:
    ///
    /// * the page type byte is a known [`PageType`];
    /// * the slot directory fits between the header and `free_end`;
    /// * `free_end` never exceeds [`PAGE_SIZE`];
    /// * every live cell lies entirely in `free_end..PAGE_SIZE` (so cells
    ///   can never overlap the directory);
    /// * no two live cells overlap each other (free-space accounting would
    ///   be wrong otherwise).
    ///
    /// Returns `StoreError::Corrupt` with the offending slot on failure.
    pub fn check_invariants(&self) -> Result<()> {
        self.page_type()?;
        let n = self.slot_count() as usize;
        let dir_end = HEADER_SIZE + SLOT_SIZE * n;
        let free_end = self.free_end() as usize;
        if free_end > PAGE_SIZE {
            return Err(StoreError::Corrupt(format!(
                "page free_end {free_end} exceeds page size {PAGE_SIZE}"
            )));
        }
        if dir_end > free_end {
            return Err(StoreError::Corrupt(format!(
                "slot directory ({n} slots, ends at {dir_end}) overlaps cell area (free_end {free_end})"
            )));
        }
        let mut extents: Vec<(usize, usize, u16)> = Vec::with_capacity(n);
        for i in 0..n as u16 {
            let at = HEADER_SIZE + SLOT_SIZE * i as usize;
            let off = read_u16(self.data, at) as usize;
            if off == DEAD as usize {
                continue;
            }
            let len = read_u16(self.data, at + 2) as usize;
            if off < free_end || off + len > PAGE_SIZE {
                return Err(StoreError::Corrupt(format!(
                    "slot {i} cell [{off}, {}) outside cell area [{free_end}, {PAGE_SIZE})",
                    off + len
                )));
            }
            extents.push((off, off + len, i));
        }
        extents.sort_unstable();
        for w in extents.windows(2) {
            let ((_, end_a, slot_a), (start_b, _, slot_b)) = (w[0], w[1]);
            if start_b < end_a {
                return Err(StoreError::Corrupt(format!(
                    "cells of slots {slot_a} and {slot_b} overlap at offset {start_b}"
                )));
            }
        }
        Ok(())
    }
}

/// Mutable view of a slotted page.
pub struct SlottedPageMut<'a> {
    data: &'a mut [u8],
}

impl<'a> SlottedPageMut<'a> {
    pub fn new(data: &'a mut [u8]) -> Self {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        SlottedPageMut { data }
    }

    /// Format the page as empty with the given type.
    pub fn init(&mut self, page_type: PageType) {
        // lint:allow(panic-path): HEADER_SIZE is far below PAGE_SIZE
        self.data[..HEADER_SIZE].fill(0);
        // lint:allow(panic-path): byte 0 of a PAGE_SIZE buffer always exists
        self.data[0] = page_type as u8;
        write_u16(self.data, 2, 0); // slot_count
        write_u16(self.data, 6, PAGE_SIZE as u16); // free_end (8192 fits in u16)
        write_u32(self.data, 8, PageId::NONE.0);
        write_u32(self.data, 12, 0);
    }

    pub fn view(&self) -> SlottedPage<'_> {
        SlottedPage { data: self.data }
    }

    pub fn set_next_page(&mut self, p: PageId) {
        write_u32(self.data, 8, p.0);
    }

    pub fn set_aux(&mut self, v: u32) {
        write_u32(self.data, 12, v);
    }

    fn set_slot(&mut self, i: u16, off: u16, len: u16) {
        let at = HEADER_SIZE + SLOT_SIZE * i as usize;
        write_u16(self.data, at, off);
        write_u16(self.data, at + 2, len);
    }

    fn set_slot_count(&mut self, n: u16) {
        write_u16(self.data, 2, n);
    }

    fn set_free_end(&mut self, v: u16) {
        write_u16(self.data, 6, v);
    }

    /// Write `cell` into the cell area, returning its offset. Caller must
    /// have verified fit.
    fn write_cell(&mut self, cell: &[u8]) -> u16 {
        let free_end = self.view().free_end() as usize;
        let off = free_end - cell.len();
        // lint:allow(panic-path): every caller checks free_space() fit first
        self.data[off..free_end].copy_from_slice(cell);
        self.set_free_end(off as u16);
        off as u16
    }

    /// Append a cell with a stable slot id (heap discipline).
    ///
    /// Returns the new slot id, or an error if the cell cannot fit even
    /// after compaction.
    pub fn push(&mut self, cell: &[u8]) -> Result<u16> {
        if cell.len() > MAX_RECORD {
            return Err(StoreError::RecordTooLarge {
                len: cell.len(),
                max: MAX_RECORD,
            });
        }
        if self.view().free_space() < cell.len() {
            if self.view().free_space_after_compaction() < cell.len() {
                return Err(StoreError::RecordTooLarge {
                    len: cell.len(),
                    max: self.view().free_space_after_compaction(),
                });
            }
            self.compact();
        }
        let n = self.view().slot_count();
        let off = self.write_cell(cell);
        self.set_slot(n, off, cell.len() as u16);
        self.set_slot_count(n + 1);
        Ok(n)
    }

    /// Mark slot `i` dead without disturbing other slot ids (heap
    /// discipline). Idempotent.
    pub fn mark_deleted(&mut self, i: u16) {
        if i < self.view().slot_count() {
            self.set_slot(i, DEAD, 0);
        }
    }

    /// Insert a cell at directory position `i`, shifting later slots right
    /// (B+-tree discipline — keeps the directory sorted).
    pub fn insert_at(&mut self, i: u16, cell: &[u8]) -> Result<()> {
        if cell.len() > MAX_RECORD {
            return Err(StoreError::RecordTooLarge {
                len: cell.len(),
                max: MAX_RECORD,
            });
        }
        let n = self.view().slot_count();
        assert!(i <= n, "insert_at past end: {i} > {n}");
        if self.view().free_space() < cell.len() {
            if self.view().free_space_after_compaction() < cell.len() {
                return Err(StoreError::RecordTooLarge {
                    len: cell.len(),
                    max: self.view().free_space_after_compaction(),
                });
            }
            self.compact();
        }
        let off = self.write_cell(cell);
        // Shift directory entries [i, n) one slot right.
        let start = HEADER_SIZE + SLOT_SIZE * i as usize;
        let end = HEADER_SIZE + SLOT_SIZE * n as usize;
        self.data.copy_within(start..end, start + SLOT_SIZE);
        self.set_slot(i, off, cell.len() as u16);
        self.set_slot_count(n + 1);
        Ok(())
    }

    /// Remove the slot at directory position `i`, shifting later slots left
    /// (B+-tree discipline). The cell space becomes dead until compaction.
    pub fn remove_at(&mut self, i: u16) {
        let n = self.view().slot_count();
        assert!(i < n, "remove_at past end: {i} >= {n}");
        let start = HEADER_SIZE + SLOT_SIZE * (i as usize + 1);
        let end = HEADER_SIZE + SLOT_SIZE * n as usize;
        self.data.copy_within(start..end, start - SLOT_SIZE);
        self.set_slot_count(n - 1);
    }

    /// Replace the cell at slot `i` with `cell`. The old space becomes dead;
    /// compaction reclaims it. Slot id is preserved.
    pub fn replace(&mut self, i: u16, cell: &[u8]) -> Result<()> {
        let n = self.view().slot_count();
        assert!(i < n, "replace past end");
        if cell.len() > MAX_RECORD {
            return Err(StoreError::RecordTooLarge {
                len: cell.len(),
                max: MAX_RECORD,
            });
        }
        // In-place rewrite when sizes match. Checked: a corrupt cell offset
        // falls through to the kill-and-rewrite path below, which lays the
        // cell down fresh instead of aborting.
        let at = HEADER_SIZE + SLOT_SIZE * i as usize;
        let off = read_u16(self.data, at);
        let len = read_u16(self.data, at + 2);
        if off != DEAD && len as usize == cell.len() {
            if let Some(dst) = self.data.get_mut(off as usize..off as usize + len as usize) {
                dst.copy_from_slice(cell);
                return Ok(());
            }
        }
        // Kill the slot so the old cell's space counts as reclaimable, then
        // check fit. No new slot entry is needed, so the SLOT_SIZE that
        // `free_space*` reserves for one comes back.
        self.set_slot(i, DEAD, 0);
        let have = self.view().free_space_after_compaction() + SLOT_SIZE;
        if have < cell.len() {
            self.set_slot(i, off, len); // restore; the old cell is untouched
            return Err(StoreError::RecordTooLarge {
                len: cell.len(),
                max: have,
            });
        }
        if self.view().free_space() + SLOT_SIZE < cell.len() {
            self.compact();
        }
        let new_off = self.write_cell(cell);
        self.set_slot(i, new_off, cell.len() as u16);
        Ok(())
    }

    /// Rewrite all live cells contiguously at the end of the page,
    /// reclaiming dead space. Slot ids are preserved.
    pub fn compact(&mut self) {
        let n = self.view().slot_count();
        // Collect live cells (slot, bytes). Cells are small; copying via a
        // scratch buffer keeps the code simple and safe.
        let mut live: Vec<(u16, Vec<u8>)> = Vec::with_capacity(n as usize);
        for i in 0..n {
            if let Some(cell) = self.view().get(i) {
                live.push((i, cell.to_vec()));
            }
        }
        self.set_free_end(PAGE_SIZE as u16);
        for (i, cell) in live {
            let off = self.write_cell(&cell);
            self.set_slot(i, off, cell.len() as u16);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(pt: PageType) -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        SlottedPageMut::new(&mut buf).init(pt);
        buf
    }

    #[test]
    fn init_sets_header() {
        let buf = fresh(PageType::Heap);
        let p = SlottedPage::new(&buf);
        assert_eq!(p.page_type().unwrap(), PageType::Heap);
        assert_eq!(p.slot_count(), 0);
        assert!(p.next_page().is_none());
        assert_eq!(p.aux(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_SIZE - SLOT_SIZE);
    }

    #[test]
    fn push_and_get() {
        let mut buf = fresh(PageType::Heap);
        let mut p = SlottedPageMut::new(&mut buf);
        let a = p.push(b"hello").unwrap();
        let b = p.push(b"world!").unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        let v = p.view();
        assert_eq!(v.get(0), Some(&b"hello"[..]));
        assert_eq!(v.get(1), Some(&b"world!"[..]));
        assert_eq!(v.get(2), None);
    }

    #[test]
    fn empty_cells_are_allowed() {
        let mut buf = fresh(PageType::Heap);
        let mut p = SlottedPageMut::new(&mut buf);
        let s = p.push(b"").unwrap();
        assert_eq!(p.view().get(s), Some(&b""[..]));
    }

    #[test]
    fn mark_deleted_keeps_other_slots_stable() {
        let mut buf = fresh(PageType::Heap);
        let mut p = SlottedPageMut::new(&mut buf);
        p.push(b"a").unwrap();
        p.push(b"b").unwrap();
        p.push(b"c").unwrap();
        p.mark_deleted(1);
        let v = p.view();
        assert_eq!(v.get(0), Some(&b"a"[..]));
        assert_eq!(v.get(1), None);
        assert_eq!(v.get(2), Some(&b"c"[..]));
        assert_eq!(v.slot_count(), 3);
    }

    #[test]
    fn fill_page_until_full_then_error() {
        let mut buf = fresh(PageType::Heap);
        let mut p = SlottedPageMut::new(&mut buf);
        let cell = [7u8; 100];
        let mut count = 0;
        loop {
            match p.push(&cell) {
                Ok(_) => count += 1,
                Err(StoreError::RecordTooLarge { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // 104 bytes per record (100 + 4 slot): expect ~78 records.
        assert!(count >= 70, "only {count} records fit");
        // Everything still readable.
        let v = p.view();
        for i in 0..count {
            assert_eq!(v.get(i as u16), Some(&cell[..]));
        }
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut buf = fresh(PageType::Heap);
        let mut p = SlottedPageMut::new(&mut buf);
        let cell = vec![1u8; MAX_RECORD];
        p.push(&cell).unwrap();
        assert_eq!(p.view().get(0).unwrap().len(), MAX_RECORD);
        assert!(p.push(b"x").is_err());
    }

    #[test]
    fn oversized_record_rejected() {
        let mut buf = fresh(PageType::Heap);
        let mut p = SlottedPageMut::new(&mut buf);
        let cell = vec![1u8; MAX_RECORD + 1];
        assert!(matches!(
            p.push(&cell),
            Err(StoreError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut buf = fresh(PageType::Heap);
        let mut p = SlottedPageMut::new(&mut buf);
        // Fill with 1000-byte cells, delete all but one, then a big cell
        // must fit via compaction.
        let cell = vec![2u8; 1000];
        let mut slots = Vec::new();
        while let Ok(s) = p.push(&cell) {
            slots.push(s);
        }
        for &s in &slots[1..] {
            p.mark_deleted(s);
        }
        let big = vec![3u8; 6000];
        let s = p.push(&big).unwrap();
        assert_eq!(p.view().get(s), Some(&big[..]));
        assert_eq!(p.view().get(slots[0]), Some(&cell[..]));
    }

    #[test]
    fn insert_at_keeps_order() {
        let mut buf = fresh(PageType::BTreeLeaf);
        let mut p = SlottedPageMut::new(&mut buf);
        p.insert_at(0, b"b").unwrap();
        p.insert_at(0, b"a").unwrap();
        p.insert_at(2, b"d").unwrap();
        p.insert_at(2, b"c").unwrap();
        let v = p.view();
        let cells: Vec<&[u8]> = (0..v.slot_count()).map(|i| v.get(i).unwrap()).collect();
        assert_eq!(cells, vec![b"a" as &[u8], b"b", b"c", b"d"]);
    }

    #[test]
    fn remove_at_shifts_left() {
        let mut buf = fresh(PageType::BTreeLeaf);
        let mut p = SlottedPageMut::new(&mut buf);
        for c in [b"a", b"b", b"c"] {
            let n = p.view().slot_count();
            p.insert_at(n, c).unwrap();
        }
        p.remove_at(1);
        let v = p.view();
        assert_eq!(v.slot_count(), 2);
        assert_eq!(v.get(0), Some(&b"a"[..]));
        assert_eq!(v.get(1), Some(&b"c"[..]));
    }

    #[test]
    fn replace_same_size_in_place() {
        let mut buf = fresh(PageType::BTreeLeaf);
        let mut p = SlottedPageMut::new(&mut buf);
        p.insert_at(0, b"xxxx").unwrap();
        p.replace(0, b"yyyy").unwrap();
        assert_eq!(p.view().get(0), Some(&b"yyyy"[..]));
    }

    #[test]
    fn replace_grows_with_compaction() {
        let mut buf = fresh(PageType::BTreeLeaf);
        let mut p = SlottedPageMut::new(&mut buf);
        // Nearly fill the page.
        let filler = vec![9u8; 4000];
        p.insert_at(0, &filler).unwrap();
        p.insert_at(1, b"tiny").unwrap();
        // Replace the filler with something that only fits if its own dead
        // space is reclaimed.
        let bigger = vec![8u8; 7000];
        p.replace(0, &bigger).unwrap();
        assert_eq!(p.view().get(0), Some(&bigger[..]));
        assert_eq!(p.view().get(1), Some(&b"tiny"[..]));
    }

    #[test]
    fn replace_too_large_errors_and_slot_dead() {
        let mut buf = fresh(PageType::BTreeLeaf);
        let mut p = SlottedPageMut::new(&mut buf);
        p.insert_at(0, b"abc").unwrap();
        let huge = vec![1u8; PAGE_SIZE];
        assert!(p.replace(0, &huge).is_err());
    }

    #[test]
    fn iter_skips_dead_slots() {
        let mut buf = fresh(PageType::Heap);
        let mut p = SlottedPageMut::new(&mut buf);
        p.push(b"a").unwrap();
        p.push(b"b").unwrap();
        p.push(b"c").unwrap();
        p.mark_deleted(1);
        let v = p.view();
        let pairs: Vec<(u16, &[u8])> = v.iter().collect();
        assert_eq!(pairs, vec![(0, &b"a"[..]), (2, &b"c"[..])]);
    }

    #[test]
    fn next_page_and_aux_round_trip() {
        let mut buf = fresh(PageType::BTreeInternal);
        let mut p = SlottedPageMut::new(&mut buf);
        p.set_next_page(PageId(42));
        p.set_aux(7);
        let v = p.view();
        assert_eq!(v.next_page(), PageId(42));
        assert_eq!(v.aux(), 7);
    }

    #[test]
    fn bad_page_type_detected() {
        let mut buf = fresh(PageType::Heap);
        buf[0] = 99;
        assert!(SlottedPage::new(&buf).page_type().is_err());
    }

    #[test]
    fn check_invariants_accepts_healthy_pages() {
        let mut buf = fresh(PageType::Heap);
        let mut p = SlottedPageMut::new(&mut buf);
        p.push(b"alpha").unwrap();
        p.push(b"beta").unwrap();
        p.push(b"gamma").unwrap();
        p.mark_deleted(1);
        p.view().check_invariants().unwrap();
        p.compact();
        p.view().check_invariants().unwrap();
    }

    #[test]
    fn check_invariants_detects_directory_overrunning_cells() {
        let mut buf = fresh(PageType::Heap);
        SlottedPageMut::new(&mut buf).push(b"abc").unwrap();
        // Claim far more slots than the free space allows.
        buf[2..4].copy_from_slice(&4000u16.to_le_bytes());
        let err = SlottedPage::new(&buf).check_invariants().unwrap_err();
        assert!(err.to_string().contains("overlaps cell area"), "{err}");
    }

    #[test]
    fn check_invariants_detects_out_of_bounds_cell() {
        let mut buf = fresh(PageType::Heap);
        SlottedPageMut::new(&mut buf).push(b"abc").unwrap();
        // Point slot 0 past the end of the page.
        let at = HEADER_SIZE;
        buf[at..at + 2].copy_from_slice(&(PAGE_SIZE as u16 - 1).to_le_bytes());
        let err = SlottedPage::new(&buf).check_invariants().unwrap_err();
        assert!(err.to_string().contains("outside cell area"), "{err}");
    }

    #[test]
    fn check_invariants_detects_overlapping_cells() {
        let mut buf = fresh(PageType::Heap);
        let mut p = SlottedPageMut::new(&mut buf);
        p.push(b"aaaa").unwrap();
        p.push(b"bbbb").unwrap();
        // Shift slot 1's cell up so it overlaps slot 0's (both stay within
        // the cell area: free_end is 8 bytes below slot 0's offset).
        let off0 = {
            let at = HEADER_SIZE;
            u16::from_le_bytes([buf[at], buf[at + 1]])
        };
        let at1 = HEADER_SIZE + SLOT_SIZE;
        buf[at1..at1 + 2].copy_from_slice(&(off0 - 1).to_le_bytes());
        let err = SlottedPage::new(&buf).check_invariants().unwrap_err();
        assert!(err.to_string().contains("overlap"), "{err}");
    }
}
