//! Observability hooks: a span sink the layer above installs.
//!
//! `fm-store` sits below `fm-core` in the workspace layering (enforced
//! by `cargo xtask lint`), so it cannot call `fm_core::tracing`
//! directly. Instead the storage layer emits named begin/end callbacks
//! through a process-wide [`SpanSink`]; `fm-core::tracing` installs a
//! sink that forwards them into its per-thread span collector. With no
//! sink installed every hook is a single `OnceLock` load — the storage
//! layer stays dependency-free and essentially unobserved.

use std::sync::OnceLock;

/// Receiver for storage-layer span events. `begin` returns an opaque
/// token handed back to `end`; implementations must be cheap and must
/// not call back into `fm-store`.
pub trait SpanSink: Sync {
    fn begin(&self, name: &'static str) -> u64;
    fn end(&self, token: u64);
}

static SINK: OnceLock<&'static (dyn SpanSink + Send + Sync)> = OnceLock::new();

/// Install the process-wide sink. First install wins; later calls are
/// ignored (idempotent by design — the tracing layer calls this from
/// every entry point).
pub fn install_span_sink(sink: &'static (dyn SpanSink + Send + Sync)) {
    let _ = SINK.set(sink);
}

/// RAII span over a storage-layer phase; inert when no sink is
/// installed.
pub(crate) struct HookSpan {
    token: Option<u64>,
}

impl HookSpan {
    pub(crate) fn enter(name: &'static str) -> HookSpan {
        HookSpan {
            token: SINK.get().map(|s| s.begin(name)),
        }
    }
}

impl Drop for HookSpan {
    fn drop(&mut self) {
        if let Some(token) = self.token {
            if let Some(sink) = SINK.get() {
                sink.end(token);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hook_span_without_sink_is_inert() {
        // Must not panic or require installation.
        let span = HookSpan::enter("extsort_spill");
        drop(span);
    }
}
