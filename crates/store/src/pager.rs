//! Page stores.
//!
//! A [`Pager`] is the lowest layer: it reads and writes whole pages by
//! [`PageId`]. Three implementations:
//!
//! * [`FilePager`] — a single file, pages addressed by offset, `pread`/
//!   `pwrite`-style positional I/O so concurrent readers never contend on a
//!   seek cursor;
//! * [`MemPager`] — anonymous in-memory pages for tests and throwaway
//!   databases;
//! * [`FaultPager`] — wraps another pager and fails after a configurable
//!   number of operations, for failure-injection tests.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::error::{Result, StoreError};
use crate::page::{PageId, PAGE_SIZE};

/// A store of fixed-size pages.
///
/// Implementations must be safe for concurrent use: the buffer pool above
/// issues reads and writes from multiple threads.
pub trait Pager: Send + Sync {
    /// Read page `id` into `buf` (`buf.len() == PAGE_SIZE`).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Write `buf` (`PAGE_SIZE` bytes) as page `id`.
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Allocate a fresh page id at the end of the store. The page contents
    /// are undefined until first written.
    fn allocate(&self) -> Result<PageId>;

    /// Number of pages in the store (allocated ids are `0..page_count`).
    fn page_count(&self) -> u32;

    /// Flush durability buffers (fsync for files; no-op in memory).
    fn sync(&self) -> Result<()>;

    /// Cumulative bytes appended to a write-ahead log, if this pager keeps
    /// one. Monotonic across checkpoints (truncating the log does not reset
    /// it); pagers without a WAL report 0.
    fn wal_bytes(&self) -> u64 {
        0
    }
}

/// File-backed pager.
///
/// Page `i` lives at byte offset `i * PAGE_SIZE`. Allocation extends the
/// logical page count; the file itself grows on first write of the new page
/// (reading an allocated-but-never-written page returns zeroes, which decode
/// as a `Free` page).
pub struct FilePager {
    file: File,
    page_count: AtomicU32,
}

impl FilePager {
    /// Open (or create) the file at `path`. An existing file must be a
    /// whole number of pages.
    pub fn open(path: &Path) -> Result<FilePager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StoreError::Corrupt(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        let pages = (len / PAGE_SIZE as u64) as u32;
        Ok(FilePager {
            file,
            page_count: AtomicU32::new(pages),
        })
    }

    fn check(&self, id: PageId) -> Result<u64> {
        if id.is_none() || id.0 >= self.page_count.load(Ordering::Acquire) {
            return Err(StoreError::InvalidPageId(u64::from(id.0)));
        }
        Ok(u64::from(id.0) * PAGE_SIZE as u64)
    }
}

impl Pager for FilePager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let off = self.check(id)?;
        // A page that was allocated but never written lies beyond EOF:
        // present it as zeroes.
        let file_len = self.file.metadata()?.len();
        if off >= file_len {
            buf.fill(0);
            return Ok(());
        }
        self.file.read_exact_at(buf, off)?;
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let off = self.check(id)?;
        self.file.write_all_at(buf, off)?;
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let id = self.page_count.fetch_add(1, Ordering::AcqRel);
        if id == u32::MAX {
            return Err(StoreError::InvalidPageId(u64::from(u32::MAX)));
        }
        Ok(PageId(id))
    }

    fn page_count(&self) -> u32 {
        self.page_count.load(Ordering::Acquire)
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// In-memory pager for tests and ephemeral databases.
#[derive(Default)]
pub struct MemPager {
    pages: RwLock<Vec<Box<[u8]>>>,
}

impl MemPager {
    pub fn new() -> MemPager {
        MemPager::default()
    }
}

impl Pager for MemPager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let pages = self.pages.read();
        let page = pages
            .get(id.0 as usize)
            .ok_or(StoreError::InvalidPageId(u64::from(id.0)))?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut pages = self.pages.write();
        let page = pages
            .get_mut(id.0 as usize)
            .ok_or(StoreError::InvalidPageId(u64::from(id.0)))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let mut pages = self.pages.write();
        let id = pages.len() as u32;
        pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        Ok(PageId(id))
    }

    fn page_count(&self) -> u32 {
        self.pages.read().len() as u32
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// Failure-injecting pager: passes operations through to `inner` until the
/// operation budget is exhausted, then fails every call.
///
/// Exercises error paths in the buffer pool, heap, B+-tree and ETI build —
/// a storage engine that only works when I/O succeeds is not a storage
/// engine.
pub struct FaultPager<P: Pager> {
    inner: P,
    ops_left: AtomicU64,
}

impl<P: Pager> FaultPager<P> {
    /// Fail all I/O after `budget` successful operations.
    pub fn new(inner: P, budget: u64) -> FaultPager<P> {
        FaultPager {
            inner,
            ops_left: AtomicU64::new(budget),
        }
    }

    fn spend(&self) -> Result<()> {
        // Saturating decrement: once zero, stay zero and fail.
        let mut cur = self.ops_left.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return Err(StoreError::InjectedFault);
            }
            match self
                .ops_left
                .compare_exchange(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }
}

impl<P: Pager> Pager for FaultPager<P> {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.spend()?;
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.spend()?;
        self.inner.write_page(id, buf)
    }

    fn allocate(&self) -> Result<PageId> {
        self.spend()?;
        self.inner.allocate()
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn sync(&self) -> Result<()> {
        self.spend()?;
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fm-store-pager-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn mem_pager_round_trip() {
        let pager = MemPager::new();
        let id = pager.allocate().unwrap();
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        pager.write_page(id, &page).unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        pager.read_page(id, &mut back).unwrap();
        assert_eq!(page, back);
    }

    #[test]
    fn mem_pager_rejects_unallocated() {
        let pager = MemPager::new();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(pager.read_page(PageId(0), &mut buf).is_err());
        assert!(pager.write_page(PageId(3), &buf).is_err());
    }

    #[test]
    fn file_pager_round_trip_and_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let pager = FilePager::open(&path).unwrap();
            let a = pager.allocate().unwrap();
            let b = pager.allocate().unwrap();
            assert_ne!(a, b);
            let mut page = vec![0u8; PAGE_SIZE];
            page[7] = 77;
            pager.write_page(b, &page).unwrap();
            pager.sync().unwrap();
        }
        {
            let pager = FilePager::open(&path).unwrap();
            // Page b was written so the file has 2 pages.
            assert_eq!(pager.page_count(), 2);
            let mut back = vec![0u8; PAGE_SIZE];
            pager.read_page(PageId(1), &mut back).unwrap();
            assert_eq!(back[7], 77);
            // Page a was allocated but never written: reads as zeroes.
            pager.read_page(PageId(0), &mut back).unwrap();
            assert!(back.iter().all(|&b| b == 0));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_pager_rejects_out_of_range() {
        let path = temp_path("range");
        let _ = std::fs::remove_file(&path);
        let pager = FilePager::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            pager.read_page(PageId(0), &mut buf),
            Err(StoreError::InvalidPageId(_))
        ));
        assert!(pager.read_page(PageId::NONE, &mut buf).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_pager_rejects_ragged_file() {
        let path = temp_path("ragged");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 1]).unwrap();
        assert!(matches!(
            FilePager::open(&path),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn allocation_is_monotonic() {
        let pager = MemPager::new();
        let ids: Vec<u32> = (0..10).map(|_| pager.allocate().unwrap().0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u32>>());
        assert_eq!(pager.page_count(), 10);
    }

    #[test]
    fn fault_pager_fails_after_budget() {
        let pager = FaultPager::new(MemPager::new(), 3);
        let id = pager.allocate().unwrap(); // op 1
        let buf = vec![0u8; PAGE_SIZE];
        pager.write_page(id, &buf).unwrap(); // op 2
        let mut back = vec![0u8; PAGE_SIZE];
        pager.read_page(id, &mut back).unwrap(); // op 3
        assert!(matches!(
            pager.read_page(id, &mut back),
            Err(StoreError::InjectedFault)
        ));
        // Stays failed.
        assert!(pager.allocate().is_err());
        assert!(pager.sync().is_err());
    }

    #[test]
    fn concurrent_mem_pager_access() {
        use std::sync::Arc;
        let pager = Arc::new(MemPager::new());
        let ids: Vec<PageId> = (0..8).map(|_| pager.allocate().unwrap()).collect();
        let mut handles = Vec::new();
        for (t, &id) in ids.iter().enumerate() {
            let pager = Arc::clone(&pager);
            handles.push(std::thread::spawn(move || {
                let mut page = vec![t as u8; PAGE_SIZE];
                for _ in 0..50 {
                    pager.write_page(id, &page).unwrap();
                    pager.read_page(id, &mut page).unwrap();
                    assert!(page.iter().all(|&b| b == t as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
