//! The database: one file (or memory region) holding a catalog of named
//! tables and indexes.
//!
//! * Page 0 is the database header (magic, version, catalog root).
//! * Page 1 is the first page of the catalog heap, whose records describe
//!   every named object: tables (heap first page + schema), indexes (B+-tree
//!   root page), and small metadata blobs (the fuzzy-match layer persists
//!   its build configuration there so a matcher can be reopened with the
//!   exact min-hash seeds it was built with).
//!
//! Catalog records are append-only; for metadata keys, the latest record
//! wins on reload. Dropping objects is out of scope (the paper never drops
//! its ETI; it rebuilds).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::error::{Result, StoreError};
use crate::heap::{HeapFile, Rid};
use crate::lockorder;
use crate::page::{PageId, PageType, SlottedPageMut};
use crate::pager::{FilePager, MemPager, Pager};
use crate::table::{decode_row, encode_row, Row, Schema};

const MAGIC: &[u8; 4] = b"FMDB";
const VERSION: u16 = 1;

#[derive(Debug, Clone)]
enum CatalogEntry {
    Table { first_page: PageId, schema: Schema },
    Index { root: PageId },
    Meta { bytes: Vec<u8> },
}

fn encode_entry(name: &str, entry: &CatalogEntry) -> Vec<u8> {
    let mut out = Vec::new();
    let (kind, payload): (u8, Vec<u8>) = match entry {
        CatalogEntry::Table { first_page, schema } => {
            let mut p = first_page.0.to_le_bytes().to_vec();
            p.extend_from_slice(&schema.encode());
            (0, p)
        }
        CatalogEntry::Index { root } => (1, root.0.to_le_bytes().to_vec()),
        CatalogEntry::Meta { bytes } => (2, bytes.clone()),
    };
    out.push(kind);
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_entry(bytes: &[u8]) -> Result<(String, CatalogEntry)> {
    if bytes.len() < 3 {
        return Err(StoreError::Corrupt("catalog record too short".into()));
    }
    let kind = bytes[0];
    let name_len = u16::from_le_bytes([bytes[1], bytes[2]]) as usize;
    if bytes.len() < 3 + name_len {
        return Err(StoreError::Corrupt("catalog record truncated name".into()));
    }
    let name = String::from_utf8(bytes[3..3 + name_len].to_vec())
        .map_err(|_| StoreError::Corrupt("catalog name not utf-8".into()))?;
    let payload = &bytes[3 + name_len..];
    let entry = match kind {
        0 => {
            if payload.len() < 4 {
                return Err(StoreError::Corrupt("catalog table record truncated".into()));
            }
            // lint:allow(unwrap): payload.len() >= 4 checked above
            let first_page = PageId(u32::from_le_bytes(payload[..4].try_into().unwrap()));
            let schema = Schema::decode(&payload[4..])?;
            CatalogEntry::Table { first_page, schema }
        }
        1 => {
            if payload.len() < 4 {
                return Err(StoreError::Corrupt("catalog index record truncated".into()));
            }
            CatalogEntry::Index {
                // lint:allow(unwrap): payload.len() >= 4 checked above
                root: PageId(u32::from_le_bytes(payload[..4].try_into().unwrap())),
            }
        }
        2 => CatalogEntry::Meta {
            bytes: payload.to_vec(),
        },
        other => return Err(StoreError::Corrupt(format!("bad catalog kind {other}"))),
    };
    Ok((name, entry))
}

/// Report from [`Database::check_invariants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatabaseCheck {
    pub tables: usize,
    pub indexes: usize,
    pub meta_blobs: usize,
}

/// A database instance.
pub struct Database {
    pool: Arc<BufferPool>,
    catalog: HeapFile,
    objects: Mutex<HashMap<String, CatalogEntry>>,
}

impl Database {
    /// Open or create a database over an arbitrary pager.
    pub fn with_pager(pager: Box<dyn Pager>, pool_frames: usize) -> Result<Database> {
        let pool = Arc::new(BufferPool::new(pager, pool_frames));
        if pool.page_count() == 0 {
            Self::initialize(pool)
        } else {
            Self::load(pool)
        }
    }

    /// In-memory database (tests, throwaway pipelines).
    pub fn in_memory() -> Result<Database> {
        Self::with_pager(Box::new(MemPager::new()), 4096)
    }

    /// File-backed database at `path`, created if missing.
    ///
    /// No crash safety between flushes: a crash *during* [`Database::flush`]
    /// can tear the file. Use [`Database::open_file_durable`] when that
    /// matters.
    pub fn open_file(path: &Path, pool_frames: usize) -> Result<Database> {
        Self::with_pager(Box::new(FilePager::open(path)?), pool_frames)
    }

    /// File-backed database with write-ahead logging: every
    /// [`Database::flush`] is an atomic, durable checkpoint, and a crash at
    /// any point reopens the database in the state of the last completed
    /// flush (see [`crate::wal::WalPager`]). Costs one extra sequential
    /// write per page write-back.
    pub fn open_file_durable(path: &Path, pool_frames: usize) -> Result<Database> {
        Self::with_pager(Box::new(crate::wal::WalPager::open(path)?), pool_frames)
    }

    fn initialize(pool: Arc<BufferPool>) -> Result<Database> {
        {
            let (id, mut header) = pool.allocate()?;
            debug_assert_eq!(id, PageId(0));
            let mut sp = SlottedPageMut::new(&mut header);
            sp.init(PageType::Meta);
            let mut payload = MAGIC.to_vec();
            payload.extend_from_slice(&VERSION.to_le_bytes());
            sp.push(&payload)?;
        }
        let catalog = HeapFile::create(Arc::clone(&pool))?;
        debug_assert_eq!(catalog.first_page(), PageId(1));
        Ok(Database {
            pool,
            catalog,
            objects: Mutex::new(HashMap::new()),
        })
    }

    fn load(pool: Arc<BufferPool>) -> Result<Database> {
        {
            let header = pool.get(PageId(0))?;
            let sp = crate::page::SlottedPage::new(&header);
            if sp.page_type()? != PageType::Meta {
                return Err(StoreError::Corrupt("page 0 is not a header page".into()));
            }
            let payload = sp
                .get(0)
                .ok_or_else(|| StoreError::Corrupt("missing database header".into()))?;
            if payload.len() < 6 || &payload[..4] != MAGIC {
                return Err(StoreError::Corrupt("bad database magic".into()));
            }
            let version = u16::from_le_bytes([payload[4], payload[5]]);
            if version != VERSION {
                return Err(StoreError::Corrupt(format!(
                    "unsupported database version {version}"
                )));
            }
        }
        let catalog = HeapFile::open(Arc::clone(&pool), PageId(1));
        let mut objects = HashMap::new();
        for record in catalog.scan() {
            let (_, bytes) = record?;
            let (name, entry) = decode_entry(&bytes)?;
            // Later records win (metadata overwrites).
            objects.insert(name, entry);
        }
        Ok(Database {
            pool,
            catalog,
            objects: Mutex::new(objects),
        })
    }

    /// The shared buffer pool (for code composing raw heaps/trees).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Create a table. Fails if the name exists.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Table> {
        let _rank = lockorder::HeldRank::acquire(lockorder::OBJECTS, "objects");
        let mut objects = self.objects.lock();
        if objects.contains_key(name) {
            return Err(StoreError::AlreadyExists(name.to_string()));
        }
        let heap = HeapFile::create(Arc::clone(&self.pool))?;
        let entry = CatalogEntry::Table {
            first_page: heap.first_page(),
            schema: schema.clone(),
        };
        self.catalog.insert(&encode_entry(name, &entry))?;
        objects.insert(name.to_string(), entry);
        Ok(Table {
            heap,
            schema,
            name: name.to_string(),
        })
    }

    /// Open an existing table.
    pub fn open_table(&self, name: &str) -> Result<Table> {
        let _rank = lockorder::HeldRank::acquire(lockorder::OBJECTS, "objects");
        let objects = self.objects.lock();
        match objects.get(name) {
            Some(CatalogEntry::Table { first_page, schema }) => Ok(Table {
                heap: HeapFile::open(Arc::clone(&self.pool), *first_page),
                schema: schema.clone(),
                name: name.to_string(),
            }),
            Some(_) => Err(StoreError::SchemaMismatch(format!("{name} is not a table"))),
            None => Err(StoreError::NotFound(name.to_string())),
        }
    }

    /// Create a B+-tree index. Fails if the name exists.
    pub fn create_index(&self, name: &str) -> Result<BTree> {
        let _rank = lockorder::HeldRank::acquire(lockorder::OBJECTS, "objects");
        let mut objects = self.objects.lock();
        if objects.contains_key(name) {
            return Err(StoreError::AlreadyExists(name.to_string()));
        }
        let tree = BTree::create(Arc::clone(&self.pool))?;
        let entry = CatalogEntry::Index { root: tree.root() };
        self.catalog.insert(&encode_entry(name, &entry))?;
        objects.insert(name.to_string(), entry);
        Ok(tree)
    }

    /// Open an existing index.
    pub fn open_index(&self, name: &str) -> Result<BTree> {
        let _rank = lockorder::HeldRank::acquire(lockorder::OBJECTS, "objects");
        let objects = self.objects.lock();
        match objects.get(name) {
            Some(CatalogEntry::Index { root }) => Ok(BTree::open(Arc::clone(&self.pool), *root)),
            Some(_) => Err(StoreError::SchemaMismatch(format!(
                "{name} is not an index"
            ))),
            None => Err(StoreError::NotFound(name.to_string())),
        }
    }

    /// Whether any catalog object with this name exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        let _rank = lockorder::HeldRank::acquire(lockorder::OBJECTS, "objects");
        self.objects.lock().contains_key(name)
    }

    /// Store a small metadata blob under `key` (overwrites).
    pub fn put_meta(&self, key: &str, bytes: &[u8]) -> Result<()> {
        let entry = CatalogEntry::Meta {
            bytes: bytes.to_vec(),
        };
        self.catalog.insert(&encode_entry(key, &entry))?;
        let _rank = lockorder::HeldRank::acquire(lockorder::OBJECTS, "objects");
        self.objects.lock().insert(key.to_string(), entry);
        Ok(())
    }

    /// Fetch a metadata blob.
    pub fn get_meta(&self, key: &str) -> Option<Vec<u8>> {
        let _rank = lockorder::HeldRank::acquire(lockorder::OBJECTS, "objects");
        match self.objects.lock().get(key) {
            Some(CatalogEntry::Meta { bytes }) => Some(bytes.clone()),
            _ => None,
        }
    }

    /// Write all dirty pages and fsync.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush()
    }

    /// Cumulative IO accounting for this database: buffer-pool traffic,
    /// physical page IO, and WAL bytes. See [`crate::buffer::StoreStats`].
    pub fn stats(&self) -> crate::buffer::StoreStats {
        self.pool.store_stats()
    }

    /// Validate the whole database: the header page, the catalog heap, and
    /// every cataloged object (tables check their heap chain and decode
    /// every row against the stored schema; indexes run the full B+-tree
    /// structural check). Errors name the failing object.
    pub fn check_invariants(&self) -> Result<DatabaseCheck> {
        {
            let header = self.pool.get(PageId(0))?;
            let sp = crate::page::SlottedPage::new(&header);
            sp.check_invariants()
                .map_err(|e| StoreError::Corrupt(format!("database header page: {e}")))?;
            if sp.page_type()? != PageType::Meta {
                return Err(StoreError::Corrupt("page 0 is not a header page".into()));
            }
        }
        self.catalog
            .check_invariants()
            .map_err(|e| StoreError::Corrupt(format!("catalog heap: {e}")))?;
        let _rank = lockorder::HeldRank::acquire(lockorder::OBJECTS, "objects");
        let objects = self.objects.lock();
        let mut check = DatabaseCheck {
            tables: 0,
            indexes: 0,
            meta_blobs: 0,
        };
        for (name, entry) in objects.iter() {
            match entry {
                CatalogEntry::Table { first_page, schema } => {
                    let heap = HeapFile::open(Arc::clone(&self.pool), *first_page);
                    heap.check_invariants()
                        .map_err(|e| StoreError::Corrupt(format!("table {name:?}: {e}")))?;
                    for record in heap.scan() {
                        let (rid, bytes) = record?;
                        decode_row(schema, &bytes)
                            .and_then(|row| schema.check(&row))
                            .map_err(|e| {
                                StoreError::Corrupt(format!(
                                    "table {name:?} row at {rid:?} violates its \
                                     schema: {e}"
                                ))
                            })?;
                    }
                    check.tables += 1;
                }
                CatalogEntry::Index { root } => {
                    BTree::open(Arc::clone(&self.pool), *root)
                        .check_invariants()
                        .map_err(|e| StoreError::Corrupt(format!("index {name:?}: {e}")))?;
                    check.indexes += 1;
                }
                CatalogEntry::Meta { .. } => check.meta_blobs += 1,
            }
        }
        Ok(check)
    }
}

/// A typed table: heap file + schema.
pub struct Table {
    heap: HeapFile,
    schema: Schema,
    name: String,
}

impl Table {
    /// A second handle onto the same table, sharing the heap file's pool
    /// and tail hint (see [`HeapFile::clone_handle`]).
    #[must_use]
    pub fn clone_handle(&self) -> Table {
        Table {
            heap: self.heap.clone_handle(),
            schema: self.schema.clone(),
            name: self.name.clone(),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Insert a row, returning its [`Rid`].
    pub fn insert(&self, row: &Row) -> Result<Rid> {
        let bytes = encode_row(&self.schema, row)?;
        self.heap.insert(&bytes)
    }

    /// Fetch the row at `rid`.
    pub fn get(&self, rid: Rid) -> Result<Row> {
        let bytes = self.heap.get(rid)?;
        decode_row(&self.schema, &bytes)
    }

    /// Delete the row at `rid`.
    pub fn delete(&self, rid: Rid) -> Result<()> {
        self.heap.delete(rid)
    }

    /// Scan all rows as `(Rid, Row)`.
    pub fn scan(&self) -> impl Iterator<Item = Result<(Rid, Row)>> + '_ {
        self.heap.scan().map(move |record| {
            let (rid, bytes) = record?;
            Ok((rid, decode_row(&self.schema, &bytes)?))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnType, Value};

    fn customer_schema() -> Schema {
        Schema::new(vec![
            ("tid", ColumnType::U32, false),
            ("name", ColumnType::Text, false),
            ("city", ColumnType::Text, true),
        ])
    }

    #[test]
    fn create_insert_scan() {
        let db = Database::in_memory().unwrap();
        let t = db.create_table("customer", customer_schema()).unwrap();
        let rid = t
            .insert(&vec![
                Value::U32(1),
                Value::Text("Boeing Company".into()),
                Value::Text("Seattle".into()),
            ])
            .unwrap();
        let row = t.get(rid).unwrap();
        assert_eq!(row[1].as_text(), Some("Boeing Company"));
        assert_eq!(t.scan().count(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let db = Database::in_memory().unwrap();
        db.create_table("t", customer_schema()).unwrap();
        assert!(matches!(
            db.create_table("t", customer_schema()),
            Err(StoreError::AlreadyExists(_))
        ));
        assert!(matches!(
            db.create_index("t"),
            Err(StoreError::AlreadyExists(_))
        ));
    }

    #[test]
    fn open_missing_object() {
        let db = Database::in_memory().unwrap();
        assert!(matches!(
            db.open_table("nope"),
            Err(StoreError::NotFound(_))
        ));
        assert!(matches!(
            db.open_index("nope"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn kind_confusion_rejected() {
        let db = Database::in_memory().unwrap();
        db.create_table("t", customer_schema()).unwrap();
        db.create_index("i").unwrap();
        assert!(db.open_table("i").is_err());
        assert!(db.open_index("t").is_err());
    }

    #[test]
    fn meta_round_trip_and_overwrite() {
        let db = Database::in_memory().unwrap();
        assert_eq!(db.get_meta("cfg"), None);
        db.put_meta("cfg", b"v1").unwrap();
        assert_eq!(db.get_meta("cfg"), Some(b"v1".to_vec()));
        db.put_meta("cfg", b"v2-new").unwrap();
        assert_eq!(db.get_meta("cfg"), Some(b"v2-new".to_vec()));
    }

    #[test]
    fn persistence_across_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("fm-store-catalog-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let rid;
        {
            let db = Database::open_file(&path, 64).unwrap();
            let t = db.create_table("customer", customer_schema()).unwrap();
            rid = t
                .insert(&vec![
                    Value::U32(7),
                    Value::Text("Bon Corporation".into()),
                    Value::Null,
                ])
                .unwrap();
            let idx = db.create_index("customer_tid").unwrap();
            idx.insert(b"\x00\x00\x00\x07", &rid.to_u64().to_le_bytes())
                .unwrap();
            db.put_meta("config", b"q=4 h=3").unwrap();
            db.flush().unwrap();
        }
        {
            let db = Database::open_file(&path, 64).unwrap();
            let t = db.open_table("customer").unwrap();
            let row = t.get(rid).unwrap();
            assert_eq!(row[1].as_text(), Some("Bon Corporation"));
            assert!(row[2].is_null());
            let idx = db.open_index("customer_tid").unwrap();
            let v = idx.get(b"\x00\x00\x00\x07").unwrap().unwrap();
            assert_eq!(
                Rid::from_u64(u64::from_le_bytes(v.try_into().unwrap())),
                rid
            );
            assert_eq!(db.get_meta("config"), Some(b"q=4 h=3".to_vec()));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_header_rejected() {
        let mut path = std::env::temp_dir();
        path.push(format!("fm-store-catalog-bad-{}.db", std::process::id()));
        // A file with one page of zeroes: page type Free, not Meta.
        std::fs::write(&path, vec![0u8; crate::page::PAGE_SIZE]).unwrap();
        assert!(Database::open_file(&path, 16).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn many_tables_and_indexes() {
        let db = Database::in_memory().unwrap();
        for i in 0..20 {
            let t = db
                .create_table(&format!("t{i}"), customer_schema())
                .unwrap();
            t.insert(&vec![
                Value::U32(i),
                Value::Text(format!("name-{i}")),
                Value::Null,
            ])
            .unwrap();
            db.create_index(&format!("i{i}")).unwrap();
        }
        for i in 0..20 {
            let t = db.open_table(&format!("t{i}")).unwrap();
            let rows: Vec<_> = t.scan().map(|r| r.unwrap().1).collect();
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0][0].as_u32(), Some(i));
            assert!(db.contains(&format!("i{i}")));
        }
    }

    #[test]
    fn check_invariants_accepts_healthy_database() {
        let db = Database::in_memory().unwrap();
        let t = db.create_table("customer", customer_schema()).unwrap();
        t.insert(&vec![
            Value::U32(1),
            Value::Text("acme".into()),
            Value::Null,
        ])
        .unwrap();
        db.create_index("by_tid").unwrap();
        db.put_meta("cfg", b"q=3").unwrap();
        assert_eq!(
            db.check_invariants().unwrap(),
            DatabaseCheck {
                tables: 1,
                indexes: 1,
                meta_blobs: 1
            }
        );
    }

    #[test]
    fn check_invariants_detects_undecodable_row() {
        let db = Database::in_memory().unwrap();
        let t = db.create_table("customer", customer_schema()).unwrap();
        t.insert(&vec![
            Value::U32(1),
            Value::Text("acme".into()),
            Value::Null,
        ])
        .unwrap();
        // Smuggle raw bytes into the table's heap, bypassing row encoding.
        t.heap.insert(b"\xFF\xFF not a row").unwrap();
        let err = db.check_invariants().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("customer") && msg.contains("schema"),
            "got: {msg}"
        );
    }

    #[test]
    fn table_delete() {
        let db = Database::in_memory().unwrap();
        let t = db.create_table("t", customer_schema()).unwrap();
        let rid = t
            .insert(&vec![Value::U32(1), Value::Text("x".into()), Value::Null])
            .unwrap();
        t.delete(rid).unwrap();
        assert!(t.get(rid).is_err());
        assert_eq!(t.scan().count(), 0);
    }
}
