//! Property-based tests for the storage substrate: the B+-tree is checked
//! against `std::collections::BTreeMap` as a model, the key encoding against
//! the logical tuple order, and the external sorter against in-memory sort.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use fm_store::keycode;
use fm_store::{BTree, BufferPool, ExternalSorter, MemPager};
use proptest::prelude::*;

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(Box::new(MemPager::new()), 256))
}

/// Operations applied to both the real tree and the model.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = prop::collection::vec(any::<u8>(), 0..24);
    let value = prop::collection::vec(any::<u8>(), 0..64);
    prop_oneof![
        3 => (key.clone(), value).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => key.clone().prop_map(Op::Delete),
        1 => key.prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_btreemap_model(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let tree = BTree::create(pool()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let new = tree.insert(&k, &v).unwrap();
                    let model_new = model.insert(k, v).is_none();
                    prop_assert_eq!(new, model_new);
                }
                Op::Delete(k) => {
                    let removed = tree.delete(&k).unwrap();
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k).unwrap(), model.get(&k).cloned());
                }
            }
        }
        // Final full-scan equivalence (order AND content), plus a structural
        // audit: matching the model proves the answers, check_invariants
        // proves the pages.
        let check = tree.check_invariants().unwrap();
        prop_assert_eq!(check.entries, model.len());
        let scanned: Vec<(Vec<u8>, Vec<u8>)> = tree
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expected);
    }

    #[test]
    fn btree_range_matches_model_range(
        keys in prop::collection::btree_set(prop::collection::vec(any::<u8>(), 0..16), 0..120),
        lo in prop::collection::vec(any::<u8>(), 0..16),
        hi in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let tree = BTree::create(pool()).unwrap();
        let mut model = BTreeMap::new();
        for k in keys {
            tree.insert(&k, b"v").unwrap();
            model.insert(k, b"v".to_vec());
        }
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let got: Vec<Vec<u8>> = tree
            .range(Bound::Included(lo.as_slice()), Bound::Excluded(hi.as_slice()))
            .unwrap()
            .map(|r| r.unwrap().0)
            .collect();
        let want: Vec<Vec<u8>> = model
            .range::<[u8], _>((Bound::Included(lo.as_slice()), Bound::Excluded(hi.as_slice())))
            .map(|(k, _)| k.clone())
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_fill_then_ops_matches_model(
        base in prop::collection::btree_map(
            prop::collection::vec(any::<u8>(), 1..16),
            prop::collection::vec(any::<u8>(), 0..32),
            0..150,
        ),
        ops in prop::collection::vec(op_strategy(), 0..100),
    ) {
        let tree = BTree::create(pool()).unwrap();
        tree.bulk_fill(base.iter().map(|(k, v)| (k.clone(), v.clone()))).unwrap();
        let mut model = base;
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let new = tree.insert(&k, &v).unwrap();
                    prop_assert_eq!(new, model.insert(k, v).is_none());
                }
                Op::Delete(k) => {
                    prop_assert_eq!(tree.delete(&k).unwrap(), model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k).unwrap(), model.get(&k).cloned());
                }
            }
        }
        let check = tree.check_invariants().unwrap();
        prop_assert_eq!(check.entries, model.len());
        let scanned: Vec<(Vec<u8>, Vec<u8>)> = tree
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expected);
    }

    #[test]
    fn keycode_string_round_trip(s in "\\PC{0,32}") {
        let mut enc = Vec::new();
        keycode::encode_str(&mut enc, &s);
        let (dec, rest) = keycode::decode_str(&enc).unwrap();
        prop_assert_eq!(dec, s);
        prop_assert!(rest.is_empty());
    }

    #[test]
    fn keycode_bytes_order_preserving(a in prop::collection::vec(any::<u8>(), 0..24),
                                      b in prop::collection::vec(any::<u8>(), 0..24)) {
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        keycode::encode_bytes(&mut ea, &a);
        keycode::encode_bytes(&mut eb, &b);
        prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
    }

    #[test]
    fn keycode_composite_order_preserving(
        s1 in "[a-z]{0,6}", c1 in any::<u8>(), n1 in any::<u32>(),
        s2 in "[a-z]{0,6}", c2 in any::<u8>(), n2 in any::<u32>(),
    ) {
        let encode = |s: &str, c: u8, n: u32| {
            let mut out = Vec::new();
            keycode::encode_str(&mut out, s);
            keycode::encode_u8(&mut out, c);
            keycode::encode_u32(&mut out, n);
            out
        };
        let logical = (s1.as_str(), c1, n1).cmp(&(s2.as_str(), c2, n2));
        let encoded = encode(&s1, c1, n1).cmp(&encode(&s2, c2, n2));
        prop_assert_eq!(logical, encoded);
    }

    #[test]
    fn extsort_equals_std_sort(records in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..32), 0..400,
    ), budget in 1usize..4096) {
        let mut sorter = ExternalSorter::with_budget(budget).unwrap();
        for r in &records {
            sorter.push(r).unwrap();
        }
        let got: Vec<Vec<u8>> = sorter.finish().unwrap().map(|r| r.unwrap()).collect();
        let mut want = records;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
