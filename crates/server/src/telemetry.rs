//! Server-side continuous telemetry: per-verb phase histograms, the
//! rolling time-series the sampler thread feeds, and the bounded
//! structured slow-query log.
//!
//! The serving path records three phases per request into
//! [`fm_core::metrics::LatencyHistogram`]s keyed by verb:
//!
//! * **queue** — decode→dequeue, taken by the worker from the same
//!   `received` timestamp it already uses for 408 deadlines (control
//!   verbs never queue, so they record nothing here);
//! * **service** — dequeue→reply-built (worker), or the inline
//!   handling time for control verbs (connection thread);
//! * **write** — the reply frame's socket write (connection thread).
//!
//! The sampler thread in [`crate::server`] closes one window per
//! configured interval: it snapshots every cumulative counter source
//! (matcher registry, serving counters, store IO, per-verb service
//! histograms), publishes the deltas plus queue-depth/inflight gauges
//! into a [`TimeSeries`], and the `timeseries` verb serves the newest N
//! windows as JSON. The `metrics` verb renders the cumulative state as
//! Prometheus text exposition instead.
//!
//! Requests slower than `slow_us` append one JSON line to a bounded
//! in-memory ring (and optionally a JSONL file): verb, per-phase
//! timings, and the query-processor counters — the same totals the
//! flight recorder keys its slow ring on, so a slow-log line can be
//! correlated with `trace_slowest` output by latency and counters.

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use fm_core::metrics::{LatencyHistogram, LatencySnapshot};
use fm_core::telemetry::TimeSeries;
use fm_core::LookupTrace;

use crate::json::Json;

/// Every protocol verb, in the order used for per-verb indexing.
pub const VERBS: &[&str] = &[
    "lookup",
    "lookup_batch",
    "stats",
    "trace_slowest",
    "health",
    "shutdown",
    "metrics",
    "timeseries",
];

/// Indexes into [`VERBS`] for the recording call sites.
pub mod verb {
    pub const LOOKUP: usize = 0;
    pub const LOOKUP_BATCH: usize = 1;
    pub const STATS: usize = 2;
    pub const TRACE_SLOWEST: usize = 3;
    pub const HEALTH: usize = 4;
    pub const SHUTDOWN: usize = 5;
    pub const METRICS: usize = 6;
    pub const TIMESERIES: usize = 7;
}

/// The three phase histograms of one verb.
#[derive(Debug, Default)]
pub struct VerbPhases {
    pub queue: LatencyHistogram,
    pub service: LatencyHistogram,
    pub write: LatencyHistogram,
}

/// One verb's cumulative phase snapshots, for exposition and windowing.
#[derive(Debug, Clone, Copy)]
pub struct VerbSnapshot {
    pub verb: &'static str,
    pub queue: LatencySnapshot,
    pub service: LatencySnapshot,
    pub write: LatencySnapshot,
}

/// All server-side telemetry state shared between connection threads,
/// workers, the sampler, and the reporting verbs.
#[derive(Debug)]
pub struct ServerTelemetry {
    verbs: Vec<VerbPhases>,
    /// Jobs served by each worker/replica pairing (utilization share).
    replica_served: Vec<AtomicU64>,
    /// The rolling window ring the sampler publishes into.
    pub series: TimeSeries,
    slow: SlowLog,
}

impl ServerTelemetry {
    #[must_use]
    pub fn new(replicas: usize, windows: usize, slow: SlowLog) -> ServerTelemetry {
        ServerTelemetry {
            verbs: (0..VERBS.len()).map(|_| VerbPhases::default()).collect(),
            replica_served: (0..replicas.max(1)).map(|_| AtomicU64::new(0)).collect(),
            series: TimeSeries::with_capacity(windows),
            slow,
        }
    }

    pub fn record_queue(&self, verb: usize, us: u64) {
        self.verbs[verb].queue.observe(us);
    }

    pub fn record_service(&self, verb: usize, us: u64) {
        self.verbs[verb].service.observe(us);
    }

    pub fn record_write(&self, verb: usize, us: u64) {
        self.verbs[verb].write.observe(us);
    }

    /// One job landed on replica `index` (worker-pinned, so this is the
    /// per-replica utilization counter the sampler windows).
    pub fn record_replica(&self, index: usize) {
        self.replica_served[index % self.replica_served.len()].fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative per-replica job counts.
    #[must_use]
    pub fn replica_served(&self) -> Vec<u64> {
        self.replica_served
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Cumulative phase snapshots for every verb.
    #[must_use]
    pub fn verb_snapshots(&self) -> Vec<VerbSnapshot> {
        VERBS
            .iter()
            .zip(&self.verbs)
            .map(|(&verb, phases)| VerbSnapshot {
                verb,
                queue: phases.queue.snapshot(),
                service: phases.service.snapshot(),
                write: phases.write.snapshot(),
            })
            .collect()
    }

    /// The slow-query log.
    #[must_use]
    pub fn slow(&self) -> &SlowLog {
        &self.slow
    }
}

/// Bounded structured slow-query log: newest `cap` records in memory,
/// optionally mirrored to a JSONL file (also bounded — a misbehaving
/// workload must not grow the log without limit).
#[derive(Debug)]
pub struct SlowLog {
    /// Requests at or above this many µs are logged; `0` disables.
    threshold_us: u64,
    cap: usize,
    records: Mutex<VecDeque<String>>,
    file: Option<Mutex<std::fs::File>>,
    logged: AtomicU64,
    file_failed: AtomicU64,
}

fn lock_or_recover<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl SlowLog {
    /// `threshold_us == 0` disables logging entirely. `path`, when
    /// given, receives every retained record as one JSON line (the file
    /// stops growing once `cap * FILE_CAP_FACTOR` lines are written).
    pub fn new(threshold_us: u64, cap: usize, path: Option<&std::path::Path>) -> SlowLog {
        let file = match path {
            Some(p) if threshold_us > 0 => std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .ok()
                .map(Mutex::new),
            _ => None,
        };
        SlowLog {
            threshold_us,
            cap: cap.max(1),
            records: Mutex::new(VecDeque::new()),
            file,
            logged: AtomicU64::new(0),
            file_failed: AtomicU64::new(0),
        }
    }

    /// The file keeps at most this many times the in-memory cap.
    pub const FILE_CAP_FACTOR: u64 = 64;

    /// The configured threshold (0 = disabled).
    #[must_use]
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Total records logged since boot (including ones the ring has
    /// since evicted).
    #[must_use]
    pub fn logged(&self) -> u64 {
        self.logged.load(Ordering::Relaxed)
    }

    /// Record one slow request. `write_us` is `None` when the reply has
    /// not been written yet (worker-side records; the write phase
    /// happens later on the connection thread).
    pub fn record(
        &self,
        verb: &str,
        queue_us: u64,
        service_us: u64,
        total_us: u64,
        trace: Option<&LookupTrace>,
    ) {
        if self.threshold_us == 0 || total_us < self.threshold_us {
            return;
        }
        // 1-based, like `TimeSeries` window seqs: `seq` equals
        // `logged()` at the moment this record was admitted.
        let seq = self.logged.fetch_add(1, Ordering::Relaxed) + 1;
        let mut fields = vec![
            ("seq", Json::from(seq)),
            ("verb", Json::from(verb)),
            ("total_us", Json::from(total_us)),
            ("queue_us", Json::from(queue_us)),
            ("service_us", Json::from(service_us)),
            ("threshold_us", Json::from(self.threshold_us)),
        ];
        if let Some(t) = trace {
            fields.push((
                "counters",
                Json::obj(vec![
                    ("qgrams_probed", Json::from(t.qgrams_probed)),
                    ("candidates", Json::from(t.candidates)),
                    ("candidates_fetched", Json::from(t.candidates_fetched)),
                    ("fms_evals", Json::from(t.fms_evals)),
                    ("latency_us", Json::from(t.latency_us)),
                ]),
            ));
        }
        let line = Json::obj(fields).encode();
        {
            let mut records = lock_or_recover(&self.records);
            if records.len() >= self.cap {
                records.pop_front();
            }
            records.push_back(line.clone());
        }
        if let Some(file) = &self.file {
            if seq <= self.cap as u64 * Self::FILE_CAP_FACTOR {
                let mut f = lock_or_recover(file);
                if writeln!(f, "{line}").is_err() {
                    self.file_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// The newest retained records, oldest first.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        lock_or_recover(&self.records).iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_indices_match_the_verb_table() {
        assert_eq!(VERBS[verb::LOOKUP], "lookup");
        assert_eq!(VERBS[verb::LOOKUP_BATCH], "lookup_batch");
        assert_eq!(VERBS[verb::STATS], "stats");
        assert_eq!(VERBS[verb::TRACE_SLOWEST], "trace_slowest");
        assert_eq!(VERBS[verb::HEALTH], "health");
        assert_eq!(VERBS[verb::SHUTDOWN], "shutdown");
        assert_eq!(VERBS[verb::METRICS], "metrics");
        assert_eq!(VERBS[verb::TIMESERIES], "timeseries");
        assert_eq!(VERBS.len(), 8);
    }

    #[test]
    fn phases_record_independently() {
        let t = ServerTelemetry::new(2, 8, SlowLog::new(0, 4, None));
        t.record_queue(verb::LOOKUP, 50);
        t.record_service(verb::LOOKUP, 500);
        t.record_write(verb::LOOKUP, 5);
        t.record_service(verb::STATS, 20);
        let snaps = t.verb_snapshots();
        let lookup = &snaps[verb::LOOKUP];
        assert_eq!(lookup.queue.count, 1);
        assert_eq!(lookup.service.count, 1);
        assert_eq!(lookup.write.count, 1);
        assert_eq!(lookup.service.sum_us, 500);
        assert_eq!(snaps[verb::STATS].service.count, 1);
        assert_eq!(
            snaps[verb::STATS].queue.count,
            0,
            "control verbs never queue"
        );
    }

    #[test]
    fn replica_counters_wrap_by_index() {
        let t = ServerTelemetry::new(2, 8, SlowLog::new(0, 4, None));
        t.record_replica(0);
        t.record_replica(1);
        t.record_replica(3); // worker 3 pinned to replica 3 % 2 == 1
        assert_eq!(t.replica_served(), vec![1, 2]);
    }

    #[test]
    fn slow_log_is_bounded_and_structured() {
        let log = SlowLog::new(100, 3, None);
        log.record("lookup", 1, 2, 50, None); // under threshold: ignored
        for i in 0..5u64 {
            log.record(
                "lookup",
                10,
                190 + i,
                200 + i,
                Some(&LookupTrace::default()),
            );
        }
        assert_eq!(log.logged(), 5);
        let lines = log.lines();
        assert_eq!(lines.len(), 3, "ring keeps only the newest cap records");
        // Newest record is last and parses as our own JSON.
        let doc = crate::json::parse(&lines[2]).expect("slow line parses");
        assert_eq!(doc.get("verb").and_then(Json::as_str), Some("lookup"));
        assert_eq!(doc.get("total_us").and_then(Json::as_u64), Some(204));
        assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(5));
        assert!(doc.get("counters").is_some());
    }

    #[test]
    fn slow_log_disabled_records_nothing() {
        let log = SlowLog::new(0, 4, None);
        log.record("lookup", 0, 0, u64::MAX, None);
        assert_eq!(log.logged(), 0);
        assert!(log.lines().is_empty());
    }

    #[test]
    fn slow_log_mirrors_to_file() {
        let dir = std::env::temp_dir().join(format!(
            "fm_slowlog_test_{}_{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("slow.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let log = SlowLog::new(10, 4, Some(&path));
            log.record("lookup", 5, 20, 25, None);
            log.record("stats", 0, 30, 30, None);
        }
        let text = std::fs::read_to_string(&path).expect("slow log file");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"verb\":\"lookup\""));
        assert!(lines[1].contains("\"verb\":\"stats\""));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
