//! Wire-format JSON: a minimal std-only value type with a strict parser
//! and a compact encoder.
//!
//! The serving layer speaks JSON because the paper's deployment target
//! (SQL Server Fuzzy Lookup) is driven by heterogeneous clients; a
//! self-describing text payload inside a binary length-prefixed frame
//! keeps the protocol debuggable with `nc` while still being cheap to
//! delimit. `fm-server` may only depend on `fm-core`/`fm-store` (the
//! `xtask lint` layering rule), so it carries its own ~200-line JSON
//! implementation instead of reaching into the checker's `jsonv`.
//!
//! Numbers are `f64`, like real JSON; every integer the protocol carries
//! (tids, latencies, counters) is far below 2^53, so round-trips are
//! exact.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered fields; duplicate keys keep the last on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last duplicate wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as `u64` (rejects negatives and non-integers above
    /// rounding noise).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serialize compactly (no whitespace).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; degrade to null rather than emit garbage.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

/// Nesting limit: protocol payloads are ~3 levels deep; a hostile frame
/// must not be able to overflow the parser's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} in object, found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] in array, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates are not paired; protocol strings
                            // never contain them. Reject instead of
                            // emitting invalid scalar values.
                            out.push(char::from_u32(code).ok_or("surrogate in \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid UTF-8 in number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let doc = Json::obj(vec![
            ("verb", Json::from("lookup")),
            (
                "input",
                Json::Arr(vec![Json::from("Boeing \"Co\""), Json::Null]),
            ),
            ("k", Json::from(3u64)),
            ("c", Json::from(0.85)),
            ("flag", Json::from(true)),
        ]);
        let text = doc.encode();
        let back = parse(&text).expect("parse back");
        assert_eq!(back, doc);
        assert_eq!(back.get("k").and_then(Json::as_u64), Some(3));
        assert_eq!(back.get("c").and_then(Json::as_f64), Some(0.85));
        assert_eq!(
            back.get("input").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn escapes_and_unicode() {
        let doc = Json::from("tab\t nl\n quote\" back\\ é∆");
        let text = doc.encode();
        assert_eq!(parse(&text).expect("escaped round trip"), doc);
        assert_eq!(
            parse(r#""\u0041\u00e9""#).expect("u-escapes"),
            Json::from("Aé")
        );
    }

    #[test]
    fn integers_encode_without_exponent() {
        assert_eq!(Json::from(1_234_567_890u64).encode(), "1234567890");
        assert_eq!(Json::Num(0.5).encode(), "0.5");
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"\\u12\""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let doc = parse(r#"{"a":1,"a":2}"#).expect("dup keys");
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(2));
    }
}
