//! `fm-server` — the online serving layer over [`fm_core::FuzzyMatcher`].
//!
//! The paper's system shipped as SQL Server *Fuzzy Lookup*: a service
//! that cleans incoming tuples at ingestion time, not a batch tool.
//! This crate closes that gap for the reproduction: it exposes a shared
//! matcher over TCP with a length-prefixed JSON protocol
//! ([`protocol`]), a fixed worker pool behind a bounded queue
//! ([`queue`]), per-request deadlines, admission control with explicit
//! overload replies, opportunistic micro-batching of queued lookups,
//! and a graceful lossless drain ([`server`]). A blocking [`client`]
//! backs the CLI verbs, the load generator, and the tests.
//!
//! Observability reuses the existing subsystems instead of duplicating
//! them: every lookup runs under the `fm_core::tracing` flight recorder
//! (the `trace_slowest` verb reads it back remotely), counters land in
//! the matcher's `MetricsRegistry`, and the `stats` verb reports
//! `fm_store` IO accounting alongside serving-layer counters. On top
//! of the cumulative counters sits a continuous layer ([`telemetry`]):
//! per-verb queue/service/write phase histograms, a sampler thread
//! publishing fixed windows into a lock-free time-series ring (the
//! `timeseries` verb), Prometheus text exposition (the `metrics`
//! verb), and a bounded slow-query log.
//!
//! See DESIGN.md §9 "Serving layer" for the frame format, threading
//! model, and overload semantics.

#![forbid(unsafe_code)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod telemetry;

pub use client::{record_to_json, Client, ClientError, LookupReply, ReplyMatch};
pub use json::Json;
pub use protocol::{FrameReader, Request, MAX_FRAME};
pub use server::{CountersSnapshot, Server, ServerConfig, ServerReport};
pub use telemetry::{ServerTelemetry, SlowLog, VerbSnapshot};
