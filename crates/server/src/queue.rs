//! A bounded MPMC queue with close-and-drain semantics.
//!
//! The serving layer's single hand-off point: connection threads
//! `try_push` (admission control wants a fast full/closed verdict, never
//! a blocking producer), worker threads `pop` (blocking; `None` means
//! the queue is closed *and* drained, which is what makes graceful
//! shutdown lossless — a worker only exits once nothing it could serve
//! remains).
//!
//! Built on `std::sync::{Mutex, Condvar}` rather than the vendored
//! `parking_lot` shim because the shim has no `Condvar`. Lock poisoning
//! is recovered (`into_inner`): the state is a `VecDeque` plus a flag,
//! both valid at every instruction boundary.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a `try_push` was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// At capacity; the item is handed back for an overload reply.
    Full(T),
    /// Closed for new work (shutdown drain in progress).
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer FIFO.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    cap: usize,
}

fn lock_state<T>(m: &Mutex<State<T>>) -> MutexGuard<'_, State<T>> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (`cap` ≥ 1).
    #[must_use]
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(cap.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueue without blocking; `Ok` carries the depth after the push.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = lock_state(&self.state);
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking dequeue. `None` only once the queue is closed and every
    /// item pushed before the close has been handed out.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock_state(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            // Condvar::wait atomically releases the queue mutex while the
            // worker sleeps, so nothing is actually blocked behind the guard.
            // lint:allow(blocking-in-worker): wait releases the queue mutex
            state = match self.not_empty.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Dequeue the front item only if `pred` accepts it; never blocks.
    /// The micro-batcher uses this to pull compatible singleton lookups
    /// without stealing work it would have to put back.
    pub fn pop_front_if(&self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        let mut state = lock_state(&self.state);
        if state.items.front().is_some_and(pred) {
            state.items.pop_front()
        } else {
            None
        }
    }

    /// Stop accepting work and wake every blocked consumer. Items already
    /// queued remain poppable (drain).
    pub fn close(&self) {
        lock_state(&self.state).closed = true;
        self.not_empty.notify_all();
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_state(&self.state).items.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_when_closed() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed(4)));
        // Drain still works after close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_front_if_is_selective() {
        let q = Bounded::new(4);
        q.try_push(10).expect("push");
        q.try_push(11).expect("push");
        assert_eq!(q.pop_front_if(|&n| n == 99), None);
        assert_eq!(q.pop_front_if(|&n| n == 10), Some(10));
        assert_eq!(q.pop_front_if(|&n| n == 11), Some(11));
        assert_eq!(q.pop_front_if(|_| true), None);
    }

    #[test]
    fn close_drains_under_contention() {
        // 4 producers push 100 items each; consumers drain; close after
        // all pushes. Every accepted item must come out exactly once.
        let q = Arc::new(Bounded::new(1000));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        q.try_push(p * 100 + i).expect("capacity 1000");
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..400).collect();
        assert_eq!(all, expected, "closed queue must drain losslessly");
    }
}
