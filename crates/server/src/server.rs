//! The TCP serving loop: accept → frame → admit → queue → worker →
//! reply.
//!
//! # Threading model
//!
//! ```text
//! acceptor thread ──spawns──▶ connection threads (one per socket)
//!                                  │ parse frame, admission control
//!                                  ▼
//!                           bounded MPMC queue  (depth = queue_depth)
//!                                  │
//!                                  ▼
//!                           worker pool (fixed, `workers` threads)
//!                                  │ micro-batch compatible lookups
//!                                  ▼
//!                           per-request mpsc reply ──▶ connection thread
//!                                                        writes frame
//! ```
//!
//! Connection threads do the cheap work (framing, parsing, control
//! verbs) and block on a reply channel for lookups; only the worker
//! pool executes matcher queries, so concurrency against the store is
//! bounded by `workers` no matter how many sockets are open.
//!
//! # Admission control and overload semantics
//!
//! A lookup is admitted only if (a) the server is not draining, (b) the
//! number of admitted-but-unanswered lookups is below `max_inflight`,
//! and (c) the queue accepts it. Anything else is answered immediately
//! with a `503` error frame — the caller learns about overload in
//! microseconds instead of waiting behind an unbounded backlog (the
//! "fail fast under overload" discipline of production lookup services).
//!
//! # Deadlines
//!
//! Each lookup carries a deadline (request `deadline_ms`, defaulting to
//! the server's `--deadline-ms`). Workers check it when they dequeue
//! the job: a request that spent its budget queueing is answered with
//! `408` and never touches the matcher, which sheds exactly the work
//! that can no longer meet its latency target.
//!
//! # Micro-batching
//!
//! When a worker dequeues a singleton lookup it opportunistically pulls
//! up to `batch_max - 1` more queued singletons with the same `(k, c)`
//! and runs them through [`FuzzyMatcher::lookup_batch`], amortising
//! per-call overhead under burst load while replying to each request
//! individually. An idle server never batches (the queue is empty), so
//! isolated requests pay zero added latency.
//!
//! # Graceful drain
//!
//! `shutdown` (the verb, or [`Server::shutdown`]) flips the drain flag,
//! closes the queue to new work, and wakes the acceptor. Already-queued
//! lookups are still served — the queue's `pop` only reports exhaustion
//! once closed *and* empty — then workers exit, connection threads
//! close on their next idle poll, and [`Server::wait`] returns the
//! final counter and metrics snapshot.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fm_core::{FuzzyMatcher, MatchResult, Record};
use fm_store::Database;

use crate::json::Json;
use crate::protocol::{self, code, FrameError, FrameEvent, FrameReader, Request, MAX_FRAME};
use crate::queue::{Bounded, PushError};

/// How often a blocked connection read wakes up to poll the drain flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing matcher lookups.
    pub workers: usize,
    /// Bounded queue depth between connections and workers.
    pub queue_depth: usize,
    /// Max admitted-but-unanswered lookups; `0` derives
    /// `workers + queue_depth`.
    pub max_inflight: usize,
    /// Default per-request deadline in milliseconds (`0` = none).
    pub deadline_ms: u64,
    /// Max lookups fused into one `lookup_batch` call.
    pub batch_max: usize,
    /// Honour the `sleep_ms` request field (test hook for making a
    /// worker provably busy; off in production).
    pub allow_sleep: bool,
    /// Matcher read replicas over the shared store; `0` derives one per
    /// worker. Replicas come from [`FuzzyMatcher::replicate`], so they
    /// share the buffer pool, weights, and metrics registry — workers
    /// round-robin over them and run lookups truly in parallel.
    pub replicas: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            max_inflight: 0,
            deadline_ms: 0,
            batch_max: 8,
            allow_sleep: false,
            replicas: 0,
        }
    }
}

/// Monotonic serving-layer counters (all relaxed: independent totals).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    frames: AtomicU64,
    responses: AtomicU64,
    write_failures: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_shutdown: AtomicU64,
    deadline_expired: AtomicU64,
    malformed: AtomicU64,
    oversized: AtomicU64,
    batches: AtomicU64,
    batched_lookups: AtomicU64,
    max_queue_depth: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            oversized: self.oversized.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_lookups: self.batched_lookups.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of the serving-layer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Sockets accepted.
    pub connections: u64,
    /// Request frames decoded.
    pub frames: u64,
    /// Response frames written successfully.
    pub responses: u64,
    /// Response frames that failed to write (peer gone mid-reply).
    pub write_failures: u64,
    /// Lookups refused with `503 overloaded`.
    pub rejected_overload: u64,
    /// Lookups refused with `503 shutting down`.
    pub rejected_shutdown: u64,
    /// Lookups answered `408` because their deadline passed in queue.
    pub deadline_expired: u64,
    /// Frames whose payload failed to parse (`400`).
    pub malformed: u64,
    /// Length prefixes beyond [`MAX_FRAME`] (`413`, connection closed).
    pub oversized: u64,
    /// `lookup_batch` calls issued by the micro-batcher (fused ≥ 2).
    pub batches: u64,
    /// Singleton lookups served through a fused batch.
    pub batched_lookups: u64,
    /// High-water mark of the worker queue.
    pub max_queue_depth: u64,
}

impl CountersSnapshot {
    /// The graceful-drain ledger: after `Server::wait` returns, every
    /// decoded request frame must have produced exactly one reply
    /// *attempt* — written (`responses`) or failed because the peer went
    /// away mid-reply (`write_failures`). The old check demanded
    /// `frames == responses` outright, which only held when one worker
    /// served one lookup at a time; with replica-parallel dispatch a
    /// client hanging up during the drain leaves its reply in
    /// `write_failures`, and that is still a balanced ledger.
    #[must_use]
    pub fn ledger_balanced(&self) -> bool {
        self.frames == self.responses + self.write_failures
    }
}

/// Everything [`Server::wait`] hands back after the drain completes.
#[derive(Debug, Clone)]
pub struct ServerReport {
    pub counters: CountersSnapshot,
    /// Final matcher metrics (the "flush a final snapshot" half of
    /// graceful shutdown).
    pub metrics: fm_core::MetricsSnapshot,
    /// Final store IO accounting.
    pub store: fm_store::StoreStats,
}

struct SingleJob {
    input: Record,
    k: usize,
    c: f64,
    deadline: Option<Instant>,
    sleep_ms: u64,
    received: Instant,
    reply: mpsc::Sender<Json>,
}

struct BatchJob {
    inputs: Vec<Record>,
    k: usize,
    c: f64,
    deadline: Option<Instant>,
    received: Instant,
    reply: mpsc::Sender<Json>,
}

enum Job {
    Single(SingleJob),
    Batch(BatchJob),
}

struct Inner {
    /// Read replicas over one store; `[0]` is the primary (control verbs
    /// and admission-time validation go there — the shared metrics
    /// registry makes any handle equivalent), workers index round-robin.
    replicas: Vec<Arc<FuzzyMatcher>>,
    db: Arc<Database>,
    config: ServerConfig,
    max_inflight: usize,
    local_addr: SocketAddr,
    queue: Bounded<Job>,
    shutting_down: AtomicBool,
    inflight: AtomicUsize,
    counters: Counters,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// A running fuzzy-lookup server. Construct with [`Server::start`];
/// consume with [`Server::wait`].
pub struct Server {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn lock_conns(m: &Mutex<Vec<JoinHandle<()>>>) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), spawn
    /// the worker pool and the acceptor, and return immediately.
    pub fn start(
        addr: &str,
        matcher: Arc<FuzzyMatcher>,
        db: Arc<Database>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let max_inflight = if config.max_inflight == 0 {
            workers + config.queue_depth
        } else {
            config.max_inflight
        };
        let replica_count = if config.replicas == 0 {
            workers
        } else {
            config.replicas
        };
        let mut replicas = Vec::with_capacity(replica_count);
        replicas.push(matcher);
        while replicas.len() < replica_count {
            replicas.push(Arc::new(replicas[0].replicate()));
        }
        let inner = Arc::new(Inner {
            replicas,
            db,
            queue: Bounded::new(config.queue_depth.max(1)),
            config,
            max_inflight,
            local_addr,
            shutting_down: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            counters: Counters::default(),
            conns: Mutex::new(Vec::new()),
        });
        let worker_handles = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, w))
            })
            .collect();
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&inner, &listener))
        };
        Ok(Server {
            inner,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Begin the graceful drain (idempotent). Equivalent to a client
    /// sending the `shutdown` verb.
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Block until the drain completes: acceptor gone, every connection
    /// closed, every queued lookup answered, workers exited. Returns
    /// the final counters + metrics + IO snapshot.
    pub fn wait(mut self) -> ServerReport {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Connection threads can no longer be spawned (acceptor is
        // gone); drain the handle list until it stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut conns = lock_conns(&self.inner.conns);
                std::mem::take(&mut *conns)
            };
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        ServerReport {
            counters: self.inner.counters.snapshot(),
            metrics: self.inner.primary().metrics_snapshot(),
            store: self.inner.db.stats(),
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if inner.is_shutting_down() {
            break; // the wake-up connection (or any racer) ends the loop
        }
        let Ok(stream) = conn else { continue };
        inner.counters.connections.fetch_add(1, Ordering::Relaxed);
        let inner_conn = Arc::clone(inner);
        let handle = std::thread::spawn(move || conn_loop(&inner_conn, stream));
        lock_conns(&inner.conns).push(handle);
    }
}

fn conn_loop(inner: &Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut reader = FrameReader::new();
    loop {
        match reader.next_frame(&mut stream, MAX_FRAME) {
            Ok(FrameEvent::Frame(payload)) => {
                let received = Instant::now();
                inner.counters.frames.fetch_add(1, Ordering::Relaxed);
                let reply = inner.handle_frame(&payload, received);
                if !inner.write_reply(&mut stream, &reply) {
                    return;
                }
            }
            Ok(FrameEvent::Idle) => {
                if inner.is_shutting_down() {
                    return;
                }
            }
            Ok(FrameEvent::Eof) => return,
            Err(FrameError::Oversized(n)) => {
                // Count it as a request we answered: the reply below
                // balances the frames/responses ledger.
                inner.counters.frames.fetch_add(1, Ordering::Relaxed);
                inner.counters.oversized.fetch_add(1, Ordering::Relaxed);
                let reply = protocol::error_reply(
                    code::FRAME_TOO_LARGE,
                    &format!("frame of {n} bytes exceeds the {MAX_FRAME} byte limit"),
                    0,
                );
                inner.write_reply(&mut stream, &reply);
                return; // cannot resync past an unread oversized payload
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, worker: usize) {
    // Each worker is pinned to one replica; with the default
    // `replicas == workers` that means no two workers ever share a
    // matcher handle, so lookups proceed truly in parallel over the
    // shared buffer pool.
    let matcher = &inner.replicas[worker % inner.replicas.len()];
    while let Some(job) = inner.queue.pop() {
        match job {
            Job::Single(job) => inner.serve_single(matcher, job),
            Job::Batch(job) => inner.serve_batch(matcher, job),
        }
    }
}

impl Inner {
    fn primary(&self) -> &FuzzyMatcher {
        &self.replicas[0]
    }

    fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Stop admitting, let workers drain what is queued, and poke
        // the acceptor out of its blocking accept.
        self.queue.close();
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Write one reply frame; returns whether the connection is still
    /// usable.
    fn write_reply(&self, stream: &mut TcpStream, reply: &Json) -> bool {
        match protocol::write_json(stream, reply) {
            Ok(()) => {
                self.counters.responses.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.counters.write_failures.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    fn handle_frame(&self, payload: &[u8], received: Instant) -> Json {
        let request = match protocol::parse_request(payload) {
            Ok(request) => request,
            Err(message) => {
                self.counters.malformed.fetch_add(1, Ordering::Relaxed);
                return protocol::error_reply(code::BAD_REQUEST, &message, elapsed_us(received));
            }
        };
        match request {
            Request::Health => protocol::ok_reply(
                elapsed_us(received),
                vec![(
                    "status",
                    Json::from(if self.is_shutting_down() {
                        "draining"
                    } else {
                        "serving"
                    }),
                )],
            ),
            Request::Stats => self.stats_reply(received),
            Request::TraceSlowest { k } => self.traces_reply(k, received),
            Request::Shutdown => {
                self.begin_shutdown();
                protocol::ok_reply(elapsed_us(received), vec![("draining", Json::Bool(true))])
            }
            Request::Lookup {
                input,
                k,
                c,
                deadline_ms,
                sleep_ms,
            } => {
                let arity = self.primary().config().arity();
                if input.arity() != arity {
                    self.counters.malformed.fetch_add(1, Ordering::Relaxed);
                    return protocol::error_reply(
                        code::BAD_REQUEST,
                        &format!("input has {} columns, reference has {arity}", input.arity()),
                        elapsed_us(received),
                    );
                }
                let deadline = self.resolve_deadline(deadline_ms, received);
                self.admit(received, |reply| {
                    Job::Single(SingleJob {
                        input,
                        k,
                        c,
                        deadline,
                        sleep_ms,
                        received,
                        reply,
                    })
                })
            }
            Request::LookupBatch {
                inputs,
                k,
                c,
                deadline_ms,
            } => {
                let arity = self.primary().config().arity();
                if let Some(bad) = inputs.iter().find(|r| r.arity() != arity) {
                    self.counters.malformed.fetch_add(1, Ordering::Relaxed);
                    return protocol::error_reply(
                        code::BAD_REQUEST,
                        &format!("input has {} columns, reference has {arity}", bad.arity()),
                        elapsed_us(received),
                    );
                }
                let deadline = self.resolve_deadline(deadline_ms, received);
                self.admit(received, |reply| {
                    Job::Batch(BatchJob {
                        inputs,
                        k,
                        c,
                        deadline,
                        received,
                        reply,
                    })
                })
            }
        }
    }

    fn resolve_deadline(&self, request_ms: Option<u64>, received: Instant) -> Option<Instant> {
        let ms = request_ms.unwrap_or(self.config.deadline_ms);
        if ms == 0 {
            None
        } else {
            Some(received + Duration::from_millis(ms))
        }
    }

    /// Admission control: drain flag, in-flight cap, queue capacity.
    /// On admission, blocks until the worker pool answers.
    fn admit(&self, received: Instant, build: impl FnOnce(mpsc::Sender<Json>) -> Job) -> Json {
        if self.is_shutting_down() {
            self.counters
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            return protocol::error_reply(code::OVERLOADED, "shutting down", elapsed_us(received));
        }
        let inflight = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        if inflight > self.max_inflight {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            self.counters
                .rejected_overload
                .fetch_add(1, Ordering::Relaxed);
            return protocol::error_reply(
                code::OVERLOADED,
                &format!("overloaded: {} lookups in flight", self.max_inflight),
                elapsed_us(received),
            );
        }
        let (tx, rx) = mpsc::channel();
        match self.queue.try_push(build(tx)) {
            Ok(depth) => {
                self.counters
                    .max_queue_depth
                    .fetch_max(depth as u64, Ordering::Relaxed);
            }
            Err(PushError::Full(_)) => {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                self.counters
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                return protocol::error_reply(
                    code::OVERLOADED,
                    &format!(
                        "overloaded: queue depth {} reached",
                        self.config.queue_depth
                    ),
                    elapsed_us(received),
                );
            }
            Err(PushError::Closed(_)) => {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                self.counters
                    .rejected_shutdown
                    .fetch_add(1, Ordering::Relaxed);
                return protocol::error_reply(
                    code::OVERLOADED,
                    "shutting down",
                    elapsed_us(received),
                );
            }
        }
        match rx.recv() {
            Ok(reply) => reply,
            Err(_) => protocol::error_reply(
                code::INTERNAL,
                "worker dropped the request",
                elapsed_us(received),
            ),
        }
    }

    /// One lookup answered (in a batch or alone): release its
    /// admission slot and send its reply.
    fn finish(&self, reply_to: &mpsc::Sender<Json>, reply: Json) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        let _ = reply_to.send(reply); // receiver gone = connection died
    }

    fn expired(deadline: Option<Instant>) -> bool {
        deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn deadline_reply(&self, received: Instant) -> Json {
        self.counters
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        protocol::error_reply(
            code::DEADLINE_EXCEEDED,
            "deadline exceeded while queued",
            elapsed_us(received),
        )
    }

    fn lookup_reply(result: &MatchResult, received: Instant) -> Json {
        protocol::ok_reply(
            elapsed_us(received),
            vec![
                ("lookup_us", Json::from(result.trace.latency_us)),
                ("matches", protocol::matches_to_json(result)),
            ],
        )
    }

    fn serve_single(&self, matcher: &FuzzyMatcher, job: SingleJob) {
        if Self::expired(job.deadline) {
            let reply = self.deadline_reply(job.received);
            self.finish(&job.reply, reply);
            return;
        }
        if job.sleep_ms > 0 && self.config.allow_sleep {
            // Test hook: make this worker provably busy, then serve the
            // lookup alone (a sleeper is not batchable).
            std::thread::sleep(Duration::from_millis(job.sleep_ms));
            self.execute_one(matcher, job);
            return;
        }
        // Micro-batching: pull queued singletons with the same (k, c)
        // while they are available, then fuse into one batch call.
        let mut batch = vec![job];
        while batch.len() < self.config.batch_max.max(1) {
            let (k, c) = (batch[0].k, batch[0].c);
            let compatible = |queued: &Job| match queued {
                Job::Single(s) => s.k == k && s.c == c && s.sleep_ms == 0,
                Job::Batch(_) => false,
            };
            match self.queue.pop_front_if(compatible) {
                Some(Job::Single(next)) => batch.push(next),
                Some(Job::Batch(_)) | None => break, // unreachable Batch: pred refuses it
            }
        }
        if batch.len() == 1 {
            let Some(job) = batch.pop() else { return };
            self.execute_one(matcher, job);
            return;
        }
        self.execute_fused(matcher, batch);
    }

    fn execute_one(&self, matcher: &FuzzyMatcher, job: SingleJob) {
        let reply = match matcher.lookup(&job.input, job.k, job.c) {
            Ok(result) => Self::lookup_reply(&result, job.received),
            Err(e) => protocol::error_reply(
                code::INTERNAL,
                &format!("lookup failed: {e}"),
                elapsed_us(job.received),
            ),
        };
        self.finish(&job.reply, reply);
    }

    /// Run ≥ 2 fused singleton lookups through `lookup_batch`, replying
    /// to each request individually.
    fn execute_fused(&self, matcher: &FuzzyMatcher, batch: Vec<SingleJob>) {
        let (k, c) = (batch[0].k, batch[0].c);
        // Answer 408 to anything whose deadline lapsed while queued and
        // keep only live jobs.
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            if Self::expired(job.deadline) {
                let reply = self.deadline_reply(job.received);
                self.finish(&job.reply, reply);
            } else {
                live.push(job);
            }
        }
        match live.len() {
            0 => {}
            1 => {
                let Some(job) = live.pop() else { return };
                self.execute_one(matcher, job);
            }
            n => {
                self.counters.batches.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .batched_lookups
                    .fetch_add(n as u64, Ordering::Relaxed);
                let records: Vec<Record> = live.iter().map(|j| j.input.clone()).collect();
                match matcher.lookup_batch(&records, k, c, 1) {
                    Ok(results) => {
                        for (job, result) in live.iter().zip(&results) {
                            self.finish(&job.reply, Self::lookup_reply(result, job.received));
                        }
                    }
                    Err(e) => {
                        let message = format!("batched lookup failed: {e}");
                        for job in &live {
                            self.finish(
                                &job.reply,
                                protocol::error_reply(
                                    code::INTERNAL,
                                    &message,
                                    elapsed_us(job.received),
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    /// A client-issued `lookup_batch`: one admission unit, one reply
    /// frame carrying per-input result arrays.
    fn serve_batch(&self, matcher: &FuzzyMatcher, job: BatchJob) {
        if Self::expired(job.deadline) {
            let reply = self.deadline_reply(job.received);
            self.finish(&job.reply, reply);
            return;
        }
        let reply = match matcher.lookup_batch(&job.inputs, job.k, job.c, 1) {
            Ok(results) => protocol::ok_reply(
                elapsed_us(job.received),
                vec![(
                    "results",
                    Json::Arr(
                        results
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("lookup_us", Json::from(r.trace.latency_us)),
                                    ("matches", protocol::matches_to_json(r)),
                                ])
                            })
                            .collect(),
                    ),
                )],
            ),
            Err(e) => protocol::error_reply(
                code::INTERNAL,
                &format!("batch lookup failed: {e}"),
                elapsed_us(job.received),
            ),
        };
        self.finish(&job.reply, reply);
    }

    fn stats_reply(&self, received: Instant) -> Json {
        let m = self.primary().metrics_snapshot();
        let io = self.db.stats();
        let c = self.counters.snapshot();
        protocol::ok_reply(
            elapsed_us(received),
            vec![
                (
                    "metrics",
                    Json::obj(vec![
                        ("lookups", Json::from(m.lookups)),
                        ("qgrams_probed", Json::from(m.qgrams_probed)),
                        ("stop_qgrams", Json::from(m.stop_qgrams)),
                        ("eti_rows", Json::from(m.eti_rows)),
                        ("tids_processed", Json::from(m.tids_processed)),
                        ("candidates", Json::from(m.candidates)),
                        ("apx_pruned", Json::from(m.apx_pruned)),
                        ("candidates_fetched", Json::from(m.candidates_fetched)),
                        ("fms_evals", Json::from(m.fms_evals)),
                        ("osc_attempts", Json::from(m.osc_attempts)),
                        ("osc_short_circuits", Json::from(m.osc_short_circuits)),
                        (
                            "latency",
                            Json::obj(vec![
                                ("count", Json::from(m.latency.count)),
                                ("mean_us", Json::from(m.latency.mean_us())),
                                ("p50_us", Json::from(m.latency.p50_us())),
                                ("p95_us", Json::from(m.latency.p95_us())),
                                ("p99_us", Json::from(m.latency.p99_us())),
                            ]),
                        ),
                    ]),
                ),
                (
                    "store",
                    Json::obj(vec![
                        ("hits", Json::from(io.hits)),
                        ("misses", Json::from(io.misses)),
                        ("evictions", Json::from(io.evictions)),
                        ("pages_read", Json::from(io.pages_read)),
                        ("pages_written", Json::from(io.pages_written)),
                        ("wal_bytes", Json::from(io.wal_bytes)),
                    ]),
                ),
                (
                    "server",
                    Json::obj(vec![
                        ("connections", Json::from(c.connections)),
                        ("frames", Json::from(c.frames)),
                        ("responses", Json::from(c.responses)),
                        ("write_failures", Json::from(c.write_failures)),
                        ("rejected_overload", Json::from(c.rejected_overload)),
                        ("rejected_shutdown", Json::from(c.rejected_shutdown)),
                        ("deadline_expired", Json::from(c.deadline_expired)),
                        ("malformed", Json::from(c.malformed)),
                        ("oversized", Json::from(c.oversized)),
                        ("batches", Json::from(c.batches)),
                        ("batched_lookups", Json::from(c.batched_lookups)),
                        ("max_queue_depth", Json::from(c.max_queue_depth)),
                        ("queue_len", Json::from(self.queue.len())),
                        ("replicas", Json::from(self.replicas.len() as u64)),
                    ]),
                ),
            ],
        )
    }

    fn traces_reply(&self, k: usize, received: Instant) -> Json {
        let traces = self.primary().slowest_traces(k);
        protocol::ok_reply(
            elapsed_us(received),
            vec![(
                "traces",
                Json::Arr(
                    traces
                        .iter()
                        .map(|t| {
                            let mut fields = vec![
                                ("seq", Json::from(t.seq)),
                                ("kind", Json::from(t.kind.as_str())),
                                ("total_us", Json::from(t.total_us())),
                                ("spans", Json::from(t.spans.len())),
                            ];
                            if let Some(counters) = t.counters {
                                fields.push((
                                    "counters",
                                    Json::obj(vec![
                                        ("qgrams_probed", Json::from(counters.qgrams_probed)),
                                        (
                                            "candidates_fetched",
                                            Json::from(counters.candidates_fetched),
                                        ),
                                        ("fms_evals", Json::from(counters.fms_evals)),
                                        ("latency_us", Json::from(counters.latency_us)),
                                    ]),
                                ));
                            }
                            Json::Obj(
                                fields
                                    .into_iter()
                                    .map(|(name, value)| (name.to_string(), value))
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            )],
        )
    }
}
