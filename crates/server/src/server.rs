//! The TCP serving loop: accept → frame → admit → queue → worker →
//! reply.
//!
//! # Threading model
//!
//! ```text
//! acceptor thread ──spawns──▶ connection threads (one per socket)
//!                                  │ parse frame, admission control
//!                                  ▼
//!                           bounded MPMC queue  (depth = queue_depth)
//!                                  │
//!                                  ▼
//!                           worker pool (fixed, `workers` threads)
//!                                  │ micro-batch compatible lookups
//!                                  ▼
//!                           per-request mpsc reply ──▶ connection thread
//!                                                        writes frame
//! ```
//!
//! Connection threads do the cheap work (framing, parsing, control
//! verbs) and block on a reply channel for lookups; only the worker
//! pool executes matcher queries, so concurrency against the store is
//! bounded by `workers` no matter how many sockets are open.
//!
//! # Admission control and overload semantics
//!
//! A lookup is admitted only if (a) the server is not draining, (b) the
//! number of admitted-but-unanswered lookups is below `max_inflight`,
//! and (c) the queue accepts it. Anything else is answered immediately
//! with a `503` error frame — the caller learns about overload in
//! microseconds instead of waiting behind an unbounded backlog (the
//! "fail fast under overload" discipline of production lookup services).
//!
//! # Deadlines
//!
//! Each lookup carries a deadline (request `deadline_ms`, defaulting to
//! the server's `--deadline-ms`). Workers check it when they dequeue
//! the job: a request that spent its budget queueing is answered with
//! `408` and never touches the matcher, which sheds exactly the work
//! that can no longer meet its latency target.
//!
//! # Micro-batching
//!
//! When a worker dequeues a singleton lookup it opportunistically pulls
//! up to `batch_max - 1` more queued singletons with the same `(k, c)`
//! and runs them through [`FuzzyMatcher::lookup_batch`], amortising
//! per-call overhead under burst load while replying to each request
//! individually. An idle server never batches (the queue is empty), so
//! isolated requests pay zero added latency.
//!
//! # Graceful drain
//!
//! `shutdown` (the verb, or [`Server::shutdown`]) flips the drain flag,
//! closes the queue to new work, and wakes the acceptor. Already-queued
//! lookups are still served — the queue's `pop` only reports exhaustion
//! once closed *and* empty — then workers exit, connection threads
//! close on their next idle poll, and [`Server::wait`] returns the
//! final counter and metrics snapshot.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fm_core::telemetry::{histogram_delta, PromText, WindowSnapshot};
use fm_core::{FuzzyMatcher, LookupTrace, MatchResult, Record};
use fm_store::Database;

use crate::json::Json;
use crate::protocol::{self, code, FrameError, FrameEvent, FrameReader, Request, MAX_FRAME};
use crate::queue::{Bounded, PushError};
use crate::telemetry::{verb, ServerTelemetry, SlowLog, VerbSnapshot};

/// How often a blocked connection read wakes up to poll the drain flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing matcher lookups.
    pub workers: usize,
    /// Bounded queue depth between connections and workers.
    pub queue_depth: usize,
    /// Max admitted-but-unanswered lookups; `0` derives
    /// `workers + queue_depth`.
    pub max_inflight: usize,
    /// Default per-request deadline in milliseconds (`0` = none).
    pub deadline_ms: u64,
    /// Max lookups fused into one `lookup_batch` call.
    pub batch_max: usize,
    /// Honour the `sleep_ms` request field (test hook for making a
    /// worker provably busy; off in production).
    pub allow_sleep: bool,
    /// Matcher read replicas over the shared store; `0` derives one per
    /// worker. Replicas come from [`FuzzyMatcher::replicate`], so they
    /// share the buffer pool, weights, and metrics registry — workers
    /// round-robin over them and run lookups truly in parallel.
    pub replicas: usize,
    /// Telemetry sampling window in milliseconds; `0` disables the
    /// sampler thread (the `metrics` verb still works — it renders
    /// cumulative state — but `timeseries` stays empty).
    pub telemetry_window_ms: u64,
    /// How many sampling windows the time-series ring retains.
    pub telemetry_windows: usize,
    /// Slow-query threshold in microseconds; requests at or above it
    /// are appended to the structured slow log. `0` disables.
    pub slow_us: u64,
    /// Optional JSONL file mirroring the slow-query log (bounded; see
    /// [`SlowLog`]).
    pub slow_log: Option<std::path::PathBuf>,
    /// In-memory slow-log ring capacity.
    pub slow_log_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            max_inflight: 0,
            deadline_ms: 0,
            batch_max: 8,
            allow_sleep: false,
            replicas: 0,
            telemetry_window_ms: 1000,
            telemetry_windows: 120,
            slow_us: 0,
            slow_log: None,
            slow_log_cap: 256,
        }
    }
}

/// Monotonic serving-layer counters (all relaxed: independent totals).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    frames: AtomicU64,
    responses: AtomicU64,
    write_failures: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_shutdown: AtomicU64,
    deadline_expired: AtomicU64,
    malformed: AtomicU64,
    oversized: AtomicU64,
    batches: AtomicU64,
    batched_lookups: AtomicU64,
    max_queue_depth: AtomicU64,
    queue_wait_us: AtomicU64,
    queue_waits: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            oversized: self.oversized.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_lookups: self.batched_lookups.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            queue_wait_us: self.queue_wait_us.load(Ordering::Relaxed),
            queue_waits: self.queue_waits.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of the serving-layer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Sockets accepted.
    pub connections: u64,
    /// Request frames decoded.
    pub frames: u64,
    /// Response frames written successfully.
    pub responses: u64,
    /// Response frames that failed to write (peer gone mid-reply).
    pub write_failures: u64,
    /// Lookups refused with `503 overloaded`.
    pub rejected_overload: u64,
    /// Lookups refused with `503 shutting down`.
    pub rejected_shutdown: u64,
    /// Lookups answered `408` because their deadline passed in queue.
    pub deadline_expired: u64,
    /// Frames whose payload failed to parse (`400`).
    pub malformed: u64,
    /// Length prefixes beyond [`MAX_FRAME`] (`413`, connection closed).
    pub oversized: u64,
    /// `lookup_batch` calls issued by the micro-batcher (fused ≥ 2).
    pub batches: u64,
    /// Singleton lookups served through a fused batch.
    pub batched_lookups: u64,
    /// High-water mark of the worker queue.
    pub max_queue_depth: u64,
    /// Total time dequeued jobs spent waiting in the queue, µs. Workers
    /// always took the dequeue timestamp (for 408 deadlines); this
    /// records the wait instead of dropping it.
    pub queue_wait_us: u64,
    /// Jobs dequeued (the divisor for a mean queue wait).
    pub queue_waits: u64,
}

impl CountersSnapshot {
    /// The graceful-drain ledger: after `Server::wait` returns, every
    /// decoded request frame must have produced exactly one reply
    /// *attempt* — written (`responses`) or failed because the peer went
    /// away mid-reply (`write_failures`). The old check demanded
    /// `frames == responses` outright, which only held when one worker
    /// served one lookup at a time; with replica-parallel dispatch a
    /// client hanging up during the drain leaves its reply in
    /// `write_failures`, and that is still a balanced ledger.
    #[must_use]
    pub fn ledger_balanced(&self) -> bool {
        self.frames == self.responses + self.write_failures
    }

    /// Every counter as `(name, value)` pairs — the single field list
    /// behind the `stats` reply's server section, the Prometheus
    /// exposition, and the sampler's window deltas.
    #[must_use]
    pub fn named(&self) -> [(&'static str, u64); 14] {
        [
            ("connections", self.connections),
            ("frames", self.frames),
            ("responses", self.responses),
            ("write_failures", self.write_failures),
            ("rejected_overload", self.rejected_overload),
            ("rejected_shutdown", self.rejected_shutdown),
            ("deadline_expired", self.deadline_expired),
            ("malformed", self.malformed),
            ("oversized", self.oversized),
            ("batches", self.batches),
            ("batched_lookups", self.batched_lookups),
            ("max_queue_depth", self.max_queue_depth),
            ("queue_wait_us", self.queue_wait_us),
            ("queue_waits", self.queue_waits),
        ]
    }
}

/// Everything [`Server::wait`] hands back after the drain completes.
#[derive(Debug, Clone)]
pub struct ServerReport {
    pub counters: CountersSnapshot,
    /// Final matcher metrics (the "flush a final snapshot" half of
    /// graceful shutdown).
    pub metrics: fm_core::MetricsSnapshot,
    /// Final store IO accounting.
    pub store: fm_store::StoreStats,
}

struct SingleJob {
    input: Record,
    k: usize,
    c: f64,
    deadline: Option<Instant>,
    sleep_ms: u64,
    received: Instant,
    /// Time spent queued, filled in at dequeue (phase telemetry).
    queue_us: u64,
    reply: mpsc::Sender<Json>,
}

struct BatchJob {
    inputs: Vec<Record>,
    k: usize,
    c: f64,
    deadline: Option<Instant>,
    received: Instant,
    /// Time spent queued, filled in at dequeue (phase telemetry).
    queue_us: u64,
    reply: mpsc::Sender<Json>,
}

enum Job {
    Single(SingleJob),
    Batch(BatchJob),
}

struct Inner {
    /// Read replicas over one store; `[0]` is the primary (control verbs
    /// and admission-time validation go there — the shared metrics
    /// registry makes any handle equivalent), workers index round-robin.
    replicas: Vec<Arc<FuzzyMatcher>>,
    db: Arc<Database>,
    config: ServerConfig,
    max_inflight: usize,
    local_addr: SocketAddr,
    queue: Bounded<Job>,
    shutting_down: AtomicBool,
    inflight: AtomicUsize,
    counters: Counters,
    conns: Mutex<Vec<JoinHandle<()>>>,
    telemetry: ServerTelemetry,
    /// Dropping this sender wakes the sampler out of its window sleep
    /// and ends it (after a final partial-window flush).
    sampler_stop: Mutex<Option<mpsc::Sender<()>>>,
    /// Process-local epoch for window `start_us` timestamps.
    epoch: Instant,
}

/// A running fuzzy-lookup server. Construct with [`Server::start`];
/// consume with [`Server::wait`].
pub struct Server {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn lock_conns(m: &Mutex<Vec<JoinHandle<()>>>) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn lock_sampler_stop(
    m: &Mutex<Option<mpsc::Sender<()>>>,
) -> std::sync::MutexGuard<'_, Option<mpsc::Sender<()>>> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), spawn
    /// the worker pool and the acceptor, and return immediately.
    pub fn start(
        addr: &str,
        matcher: Arc<FuzzyMatcher>,
        db: Arc<Database>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let max_inflight = if config.max_inflight == 0 {
            workers + config.queue_depth
        } else {
            config.max_inflight
        };
        let replica_count = if config.replicas == 0 {
            workers
        } else {
            config.replicas
        };
        let mut replicas = Vec::with_capacity(replica_count);
        replicas.push(matcher);
        while replicas.len() < replica_count {
            replicas.push(Arc::new(replicas[0].replicate()));
        }
        let slow = SlowLog::new(
            config.slow_us,
            config.slow_log_cap,
            config.slow_log.as_deref(),
        );
        let telemetry = ServerTelemetry::new(replica_count, config.telemetry_windows.max(1), slow);
        let inner = Arc::new(Inner {
            replicas,
            db,
            queue: Bounded::new(config.queue_depth.max(1)),
            config,
            max_inflight,
            local_addr,
            shutting_down: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            counters: Counters::default(),
            conns: Mutex::new(Vec::new()),
            telemetry,
            sampler_stop: Mutex::new(None),
            epoch: Instant::now(),
        });
        let sampler = if inner.config.telemetry_window_ms > 0 {
            let (stop_tx, stop_rx) = mpsc::channel();
            *lock_sampler_stop(&inner.sampler_stop) = Some(stop_tx);
            let inner_sampler = Arc::clone(&inner);
            Some(std::thread::spawn(move || {
                sampler_loop(&inner_sampler, &stop_rx);
            }))
        } else {
            None
        };
        let worker_handles = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, w))
            })
            .collect();
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&inner, &listener))
        };
        Ok(Server {
            inner,
            acceptor: Some(acceptor),
            workers: worker_handles,
            sampler,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Begin the graceful drain (idempotent). Equivalent to a client
    /// sending the `shutdown` verb.
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Block until the drain completes: acceptor gone, every connection
    /// closed, every queued lookup answered, workers exited. Returns
    /// the final counters + metrics + IO snapshot.
    pub fn wait(mut self) -> ServerReport {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Connection threads can no longer be spawned (acceptor is
        // gone); drain the handle list until it stays empty.
        loop {
            let handles: Vec<JoinHandle<()>> = {
                let mut conns = lock_conns(&self.inner.conns);
                std::mem::take(&mut *conns)
            };
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.sampler.take() {
            let _ = handle.join();
        }
        ServerReport {
            counters: self.inner.counters.snapshot(),
            metrics: self.inner.primary().metrics_snapshot(),
            store: self.inner.db.stats(),
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if inner.is_shutting_down() {
            break; // the wake-up connection (or any racer) ends the loop
        }
        let Ok(stream) = conn else { continue };
        inner.counters.connections.fetch_add(1, Ordering::Relaxed);
        let inner_conn = Arc::clone(inner);
        let handle = std::thread::spawn(move || conn_loop(&inner_conn, stream));
        lock_conns(&inner.conns).push(handle);
    }
}

fn conn_loop(inner: &Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut reader = FrameReader::new();
    loop {
        match reader.next_frame(&mut stream, MAX_FRAME) {
            Ok(FrameEvent::Frame(payload)) => {
                let received = Instant::now();
                inner.counters.frames.fetch_add(1, Ordering::Relaxed);
                let (reply, verb_idx) = inner.handle_frame(&payload, received);
                let write_start = Instant::now();
                let usable = inner.write_reply(&mut stream, &reply);
                if let Some(v) = verb_idx {
                    inner.telemetry.record_write(v, elapsed_us(write_start));
                }
                if !usable {
                    return;
                }
            }
            Ok(FrameEvent::Idle) => {
                if inner.is_shutting_down() {
                    return;
                }
            }
            Ok(FrameEvent::Eof) => return,
            Err(FrameError::Oversized(n)) => {
                // Count it as a request we answered: the reply below
                // balances the frames/responses ledger.
                inner.counters.frames.fetch_add(1, Ordering::Relaxed);
                inner.counters.oversized.fetch_add(1, Ordering::Relaxed);
                let reply = protocol::error_reply(
                    code::FRAME_TOO_LARGE,
                    &format!("frame of {n} bytes exceeds the {MAX_FRAME} byte limit"),
                    0,
                );
                inner.write_reply(&mut stream, &reply);
                return; // cannot resync past an unread oversized payload
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, worker: usize) {
    // Each worker is pinned to one replica; with the default
    // `replicas == workers` that means no two workers ever share a
    // matcher handle, so lookups proceed truly in parallel over the
    // shared buffer pool.
    let replica = worker % inner.replicas.len();
    let matcher = &inner.replicas[replica];
    while let Some(job) = inner.queue.pop() {
        match job {
            Job::Single(mut job) => {
                job.queue_us = inner.note_dequeue(verb::LOOKUP, replica, job.received);
                inner.serve_single(matcher, replica, job);
            }
            Job::Batch(mut job) => {
                job.queue_us = inner.note_dequeue(verb::LOOKUP_BATCH, replica, job.received);
                inner.serve_batch(matcher, job);
            }
        }
    }
}

/// The dedicated sampler: every `telemetry_window_ms` it cuts the
/// cumulative counter sources, publishes the window's deltas and gauge
/// samples into the time-series ring, and goes back to sleep. The drain
/// drops the stop sender, which turns the sleep into an immediate
/// `Disconnected` — the sampler flushes one final partial window and
/// exits.
fn sampler_loop(inner: &Arc<Inner>, stop: &mpsc::Receiver<()>) {
    let window = Duration::from_millis(inner.config.telemetry_window_ms.max(1));
    let mut prev = SamplerCut::capture(inner);
    loop {
        let alive = matches!(
            stop.recv_timeout(window),
            Err(mpsc::RecvTimeoutError::Timeout)
        );
        let cut = SamplerCut::capture(inner);
        inner.publish_window(&prev, &cut);
        prev = cut;
        if !alive {
            return;
        }
    }
}

/// One consistent-enough cut of every cumulative counter source the
/// sampler windows over.
struct SamplerCut {
    at_us: u64,
    lookups: u64,
    counters: CountersSnapshot,
    store: fm_store::StoreStats,
    replica_served: Vec<u64>,
    verbs: Vec<VerbSnapshot>,
    slow_logged: u64,
}

impl SamplerCut {
    fn capture(inner: &Inner) -> SamplerCut {
        SamplerCut {
            at_us: u64::try_from(inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
            lookups: inner.primary().metrics_snapshot().lookups,
            counters: inner.counters.snapshot(),
            store: inner.db.stats(),
            replica_served: inner.telemetry.replica_served(),
            verbs: inner.telemetry.verb_snapshots(),
            slow_logged: inner.telemetry.slow().logged(),
        }
    }
}

impl Inner {
    fn primary(&self) -> &FuzzyMatcher {
        &self.replicas[0]
    }

    /// A worker pulled one job off the queue: record the wait it
    /// accumulated (the timestamp the 408 deadline check already takes)
    /// into the counters and the verb's queue-phase histogram, and
    /// charge the job to this worker's replica.
    fn note_dequeue(&self, verb_idx: usize, replica: usize, received: Instant) -> u64 {
        let waited = elapsed_us(received);
        self.counters
            .queue_wait_us
            .fetch_add(waited, Ordering::Relaxed);
        self.counters.queue_waits.fetch_add(1, Ordering::Relaxed);
        self.telemetry.record_queue(verb_idx, waited);
        self.telemetry.record_replica(replica);
        waited
    }

    /// Append to the slow-query log if the request's total time (decode
    /// to reply-built) crossed the threshold.
    fn note_slow(
        &self,
        verb_name: &str,
        queue_us: u64,
        service_us: u64,
        received: Instant,
        trace: Option<&LookupTrace>,
    ) {
        let slow = self.telemetry.slow();
        if slow.threshold_us() == 0 {
            return;
        }
        slow.record(verb_name, queue_us, service_us, elapsed_us(received), trace);
    }

    /// Compute one window's deltas between two sampler cuts and publish
    /// it into the time-series ring.
    fn publish_window(&self, prev: &SamplerCut, cut: &SamplerCut) {
        let mut counters: Vec<(String, u64)> = Vec::new();
        for ((name, now), (_, before)) in cut.counters.named().iter().zip(prev.counters.named()) {
            counters.push(((*name).to_string(), now.saturating_sub(before)));
        }
        counters.push((
            "lookups".to_string(),
            cut.lookups.saturating_sub(prev.lookups),
        ));
        let pool_hits = cut.store.hits.saturating_sub(prev.store.hits);
        let pool_misses = cut.store.misses.saturating_sub(prev.store.misses);
        counters.push(("pool_hits".to_string(), pool_hits));
        counters.push(("pool_misses".to_string(), pool_misses));
        counters.push((
            "pages_read".to_string(),
            cut.store.pages_read.saturating_sub(prev.store.pages_read),
        ));
        for (i, (now, before)) in cut
            .replica_served
            .iter()
            .zip(prev.replica_served.iter())
            .enumerate()
        {
            counters.push((format!("replica_served_{i}"), now.saturating_sub(*before)));
        }
        counters.push((
            "slow_logged".to_string(),
            cut.slow_logged.saturating_sub(prev.slow_logged),
        ));
        let mut gauges = vec![
            ("queue_len".to_string(), self.queue.len() as f64),
            (
                "inflight".to_string(),
                self.inflight.load(Ordering::SeqCst) as f64,
            ),
        ];
        if pool_hits + pool_misses > 0 {
            gauges.push((
                "pool_hit_rate".to_string(),
                pool_hits as f64 / (pool_hits + pool_misses) as f64,
            ));
        }
        let verbs = cut
            .verbs
            .iter()
            .zip(prev.verbs.iter())
            .filter_map(|(now, before)| {
                let delta = histogram_delta(&now.service, &before.service);
                (delta.count > 0).then(|| (now.verb.to_string(), delta))
            })
            .collect();
        self.telemetry.series.push(WindowSnapshot {
            seq: 0, // assigned by push
            start_us: prev.at_us,
            dur_us: cut.at_us.saturating_sub(prev.at_us),
            counters,
            gauges,
            verbs,
        });
    }

    fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Stop admitting, let workers drain what is queued, and poke
        // the acceptor out of its blocking accept. Dropping the stop
        // sender wakes the sampler, which flushes one final partial
        // window and exits ([`Server::wait`] joins it after the
        // workers, so the ledger the report sees is final).
        let stop = lock_sampler_stop(&self.sampler_stop).take();
        drop(stop);
        self.queue.close();
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Write one reply frame; returns whether the connection is still
    /// usable.
    fn write_reply(&self, stream: &mut TcpStream, reply: &Json) -> bool {
        match protocol::write_json(stream, reply) {
            Ok(()) => {
                self.counters.responses.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.counters.write_failures.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Serve one decoded frame. Returns the reply plus the verb's
    /// telemetry index (`None` for malformed frames), so the connection
    /// thread can attribute the write phase. Control verbs record their
    /// service phase here; queued lookups record theirs on the worker.
    fn handle_frame(&self, payload: &[u8], received: Instant) -> (Json, Option<usize>) {
        let request = match protocol::parse_request(payload) {
            Ok(request) => request,
            Err(message) => {
                self.counters.malformed.fetch_add(1, Ordering::Relaxed);
                return (
                    protocol::error_reply(code::BAD_REQUEST, &message, elapsed_us(received)),
                    None,
                );
            }
        };
        let inline = |verb_idx: usize, reply: Json| {
            self.telemetry
                .record_service(verb_idx, elapsed_us(received));
            (reply, Some(verb_idx))
        };
        match request {
            Request::Health => inline(
                verb::HEALTH,
                protocol::ok_reply(
                    elapsed_us(received),
                    vec![(
                        "status",
                        Json::from(if self.is_shutting_down() {
                            "draining"
                        } else {
                            "serving"
                        }),
                    )],
                ),
            ),
            Request::Stats => inline(verb::STATS, self.stats_reply(received)),
            Request::TraceSlowest { k } => {
                inline(verb::TRACE_SLOWEST, self.traces_reply(k, received))
            }
            Request::Metrics => inline(verb::METRICS, self.metrics_reply(received)),
            Request::Timeseries { n } => {
                inline(verb::TIMESERIES, self.timeseries_reply(n, received))
            }
            Request::Shutdown => {
                self.begin_shutdown();
                inline(
                    verb::SHUTDOWN,
                    protocol::ok_reply(elapsed_us(received), vec![("draining", Json::Bool(true))]),
                )
            }
            Request::Lookup {
                input,
                k,
                c,
                deadline_ms,
                sleep_ms,
            } => {
                let arity = self.primary().config().arity();
                if input.arity() != arity {
                    self.counters.malformed.fetch_add(1, Ordering::Relaxed);
                    return (
                        protocol::error_reply(
                            code::BAD_REQUEST,
                            &format!("input has {} columns, reference has {arity}", input.arity()),
                            elapsed_us(received),
                        ),
                        Some(verb::LOOKUP),
                    );
                }
                let deadline = self.resolve_deadline(deadline_ms, received);
                let reply = self.admit(received, |reply| {
                    Job::Single(SingleJob {
                        input,
                        k,
                        c,
                        deadline,
                        sleep_ms,
                        received,
                        queue_us: 0,
                        reply,
                    })
                });
                (reply, Some(verb::LOOKUP))
            }
            Request::LookupBatch {
                inputs,
                k,
                c,
                deadline_ms,
            } => {
                let arity = self.primary().config().arity();
                if let Some(bad) = inputs.iter().find(|r| r.arity() != arity) {
                    self.counters.malformed.fetch_add(1, Ordering::Relaxed);
                    return (
                        protocol::error_reply(
                            code::BAD_REQUEST,
                            &format!("input has {} columns, reference has {arity}", bad.arity()),
                            elapsed_us(received),
                        ),
                        Some(verb::LOOKUP_BATCH),
                    );
                }
                let deadline = self.resolve_deadline(deadline_ms, received);
                let reply = self.admit(received, |reply| {
                    Job::Batch(BatchJob {
                        inputs,
                        k,
                        c,
                        deadline,
                        received,
                        queue_us: 0,
                        reply,
                    })
                });
                (reply, Some(verb::LOOKUP_BATCH))
            }
        }
    }

    fn resolve_deadline(&self, request_ms: Option<u64>, received: Instant) -> Option<Instant> {
        let ms = request_ms.unwrap_or(self.config.deadline_ms);
        if ms == 0 {
            None
        } else {
            Some(received + Duration::from_millis(ms))
        }
    }

    /// Admission control: drain flag, in-flight cap, queue capacity.
    /// On admission, blocks until the worker pool answers.
    fn admit(&self, received: Instant, build: impl FnOnce(mpsc::Sender<Json>) -> Job) -> Json {
        if self.is_shutting_down() {
            self.counters
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            return protocol::error_reply(code::OVERLOADED, "shutting down", elapsed_us(received));
        }
        let inflight = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        if inflight > self.max_inflight {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            self.counters
                .rejected_overload
                .fetch_add(1, Ordering::Relaxed);
            return protocol::error_reply(
                code::OVERLOADED,
                &format!("overloaded: {} lookups in flight", self.max_inflight),
                elapsed_us(received),
            );
        }
        let (tx, rx) = mpsc::channel();
        match self.queue.try_push(build(tx)) {
            Ok(depth) => {
                self.counters
                    .max_queue_depth
                    .fetch_max(depth as u64, Ordering::Relaxed);
            }
            Err(PushError::Full(_)) => {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                self.counters
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                return protocol::error_reply(
                    code::OVERLOADED,
                    &format!(
                        "overloaded: queue depth {} reached",
                        self.config.queue_depth
                    ),
                    elapsed_us(received),
                );
            }
            Err(PushError::Closed(_)) => {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                self.counters
                    .rejected_shutdown
                    .fetch_add(1, Ordering::Relaxed);
                return protocol::error_reply(
                    code::OVERLOADED,
                    "shutting down",
                    elapsed_us(received),
                );
            }
        }
        match rx.recv() {
            Ok(reply) => reply,
            Err(_) => protocol::error_reply(
                code::INTERNAL,
                "worker dropped the request",
                elapsed_us(received),
            ),
        }
    }

    /// One lookup answered (in a batch or alone): release its
    /// admission slot and send its reply.
    fn finish(&self, reply_to: &mpsc::Sender<Json>, reply: Json) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        let _ = reply_to.send(reply); // receiver gone = connection died
    }

    fn expired(deadline: Option<Instant>) -> bool {
        deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn deadline_reply(&self, received: Instant) -> Json {
        self.counters
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        protocol::error_reply(
            code::DEADLINE_EXCEEDED,
            "deadline exceeded while queued",
            elapsed_us(received),
        )
    }

    fn lookup_reply(result: &MatchResult, received: Instant) -> Json {
        protocol::ok_reply(
            elapsed_us(received),
            vec![
                ("lookup_us", Json::from(result.trace.latency_us)),
                ("matches", protocol::matches_to_json(result)),
            ],
        )
    }

    fn serve_single(&self, matcher: &FuzzyMatcher, replica: usize, job: SingleJob) {
        if Self::expired(job.deadline) {
            let reply = self.deadline_reply(job.received);
            self.finish(&job.reply, reply);
            return;
        }
        if job.sleep_ms > 0 && self.config.allow_sleep {
            // Test hook: make this worker provably busy, then serve the
            // lookup alone (a sleeper is not batchable). The sleep
            // lands in the request's total time (so the slow-query log
            // sees it) but not in the service histogram, which measures
            // only the matcher call.
            std::thread::sleep(Duration::from_millis(job.sleep_ms));
            self.execute_one(matcher, job);
            return;
        }
        // Micro-batching: pull queued singletons with the same (k, c)
        // while they are available, then fuse into one batch call.
        let mut batch = vec![job];
        while batch.len() < self.config.batch_max.max(1) {
            let (k, c) = (batch[0].k, batch[0].c);
            let compatible = |queued: &Job| match queued {
                Job::Single(s) => s.k == k && s.c == c && s.sleep_ms == 0,
                Job::Batch(_) => false,
            };
            match self.queue.pop_front_if(compatible) {
                Some(Job::Single(mut next)) => {
                    // This pull is the fused job's dequeue moment.
                    next.queue_us = self.note_dequeue(verb::LOOKUP, replica, next.received);
                    batch.push(next);
                }
                Some(Job::Batch(_)) | None => break, // unreachable Batch: pred refuses it
            }
        }
        if batch.len() == 1 {
            let Some(job) = batch.pop() else { return };
            self.execute_one(matcher, job);
            return;
        }
        self.execute_fused(matcher, batch);
    }

    fn execute_one(&self, matcher: &FuzzyMatcher, job: SingleJob) {
        let service_start = Instant::now();
        let outcome = matcher.lookup(&job.input, job.k, job.c);
        let service_us = elapsed_us(service_start);
        self.telemetry.record_service(verb::LOOKUP, service_us);
        let reply = match outcome {
            Ok(result) => {
                self.note_slow(
                    "lookup",
                    job.queue_us,
                    service_us,
                    job.received,
                    Some(&result.trace),
                );
                Self::lookup_reply(&result, job.received)
            }
            Err(e) => {
                self.note_slow("lookup", job.queue_us, service_us, job.received, None);
                protocol::error_reply(
                    code::INTERNAL,
                    &format!("lookup failed: {e}"),
                    elapsed_us(job.received),
                )
            }
        };
        self.finish(&job.reply, reply);
    }

    /// Run ≥ 2 fused singleton lookups through `lookup_batch`, replying
    /// to each request individually.
    fn execute_fused(&self, matcher: &FuzzyMatcher, batch: Vec<SingleJob>) {
        let (k, c) = (batch[0].k, batch[0].c);
        // Answer 408 to anything whose deadline lapsed while queued and
        // keep only live jobs.
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            if Self::expired(job.deadline) {
                let reply = self.deadline_reply(job.received);
                self.finish(&job.reply, reply);
            } else {
                live.push(job);
            }
        }
        match live.len() {
            0 => {}
            1 => {
                let Some(job) = live.pop() else { return };
                self.execute_one(matcher, job);
            }
            n => {
                self.counters.batches.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .batched_lookups
                    .fetch_add(n as u64, Ordering::Relaxed);
                let records: Vec<Record> = live.iter().map(|j| j.input.clone()).collect();
                let service_start = Instant::now();
                match matcher.lookup_batch(&records, k, c, 1) {
                    Ok(results) => {
                        // Each fused lookup's service phase is the whole
                        // batch call — that is the latency its caller
                        // actually experienced.
                        let service_us = elapsed_us(service_start);
                        for (job, result) in live.iter().zip(&results) {
                            self.telemetry.record_service(verb::LOOKUP, service_us);
                            self.note_slow(
                                "lookup",
                                job.queue_us,
                                service_us,
                                job.received,
                                Some(&result.trace),
                            );
                            self.finish(&job.reply, Self::lookup_reply(result, job.received));
                        }
                    }
                    Err(e) => {
                        let service_us = elapsed_us(service_start);
                        let message = format!("batched lookup failed: {e}");
                        for job in &live {
                            self.telemetry.record_service(verb::LOOKUP, service_us);
                            self.finish(
                                &job.reply,
                                protocol::error_reply(
                                    code::INTERNAL,
                                    &message,
                                    elapsed_us(job.received),
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    /// A client-issued `lookup_batch`: one admission unit, one reply
    /// frame carrying per-input result arrays.
    fn serve_batch(&self, matcher: &FuzzyMatcher, job: BatchJob) {
        if Self::expired(job.deadline) {
            let reply = self.deadline_reply(job.received);
            self.finish(&job.reply, reply);
            return;
        }
        let service_start = Instant::now();
        let outcome = matcher.lookup_batch(&job.inputs, job.k, job.c, 1);
        let service_us = elapsed_us(service_start);
        self.telemetry
            .record_service(verb::LOOKUP_BATCH, service_us);
        self.note_slow("lookup_batch", job.queue_us, service_us, job.received, None);
        let reply = match outcome {
            Ok(results) => protocol::ok_reply(
                elapsed_us(job.received),
                vec![(
                    "results",
                    Json::Arr(
                        results
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("lookup_us", Json::from(r.trace.latency_us)),
                                    ("matches", protocol::matches_to_json(r)),
                                ])
                            })
                            .collect(),
                    ),
                )],
            ),
            Err(e) => protocol::error_reply(
                code::INTERNAL,
                &format!("batch lookup failed: {e}"),
                elapsed_us(job.received),
            ),
        };
        self.finish(&job.reply, reply);
    }

    fn stats_reply(&self, received: Instant) -> Json {
        let m = self.primary().metrics_snapshot();
        let io = self.db.stats();
        let c = self.counters.snapshot();
        protocol::ok_reply(
            elapsed_us(received),
            vec![
                (
                    "metrics",
                    Json::obj(vec![
                        ("lookups", Json::from(m.lookups)),
                        ("qgrams_probed", Json::from(m.qgrams_probed)),
                        ("stop_qgrams", Json::from(m.stop_qgrams)),
                        ("eti_rows", Json::from(m.eti_rows)),
                        ("tids_processed", Json::from(m.tids_processed)),
                        ("candidates", Json::from(m.candidates)),
                        ("apx_pruned", Json::from(m.apx_pruned)),
                        ("candidates_fetched", Json::from(m.candidates_fetched)),
                        ("fms_evals", Json::from(m.fms_evals)),
                        ("osc_attempts", Json::from(m.osc_attempts)),
                        ("osc_short_circuits", Json::from(m.osc_short_circuits)),
                        (
                            "latency",
                            Json::obj(vec![
                                ("count", Json::from(m.latency.count)),
                                ("sum_us", Json::from(m.latency.sum_us)),
                                ("mean_us", Json::from(m.latency.mean_us())),
                                ("p50_us", Json::from(m.latency.p50_us())),
                                ("p95_us", Json::from(m.latency.p95_us())),
                                ("p99_us", Json::from(m.latency.p99_us())),
                            ]),
                        ),
                    ]),
                ),
                (
                    "store",
                    Json::obj(vec![
                        ("hits", Json::from(io.hits)),
                        ("misses", Json::from(io.misses)),
                        ("evictions", Json::from(io.evictions)),
                        ("pages_read", Json::from(io.pages_read)),
                        ("pages_written", Json::from(io.pages_written)),
                        ("wal_bytes", Json::from(io.wal_bytes)),
                    ]),
                ),
                ("server", {
                    // One source of truth for the counter list: the
                    // same `named()` pairs the exposition and the
                    // sampler use, plus the point-in-time gauges.
                    let mut fields: Vec<(&str, Json)> = c
                        .named()
                        .iter()
                        .map(|&(name, value)| (name, Json::from(value)))
                        .collect();
                    fields.push(("queue_len", Json::from(self.queue.len())));
                    fields.push(("replicas", Json::from(self.replicas.len() as u64)));
                    fields.push(("slow_logged", Json::from(self.telemetry.slow().logged())));
                    fields.push((
                        "telemetry_windows",
                        Json::from(self.telemetry.series.pushed()),
                    ));
                    Json::obj(fields)
                }),
            ],
        )
    }

    /// The `metrics` verb: the full cumulative state rendered as
    /// Prometheus text exposition. Scraped in one quiesced moment, its
    /// `_count`/`_sum` totals equal the JSON `stats` counters exactly —
    /// both read the same atomics.
    fn metrics_reply(&self, received: Instant) -> Json {
        let m = self.primary().metrics_snapshot();
        let io = self.db.stats();
        let c = self.counters.snapshot();
        let mut prom = PromText::new();
        for (name, value) in m.named_counters() {
            prom.counter(
                &format!("fm_{name}_total"),
                "Matcher query-processor counter (see fm-core::metrics).",
                &[],
                value,
            );
        }
        prom.histogram(
            "fm_lookup_latency_us",
            "Matcher-side lookup latency, microseconds.",
            &[],
            &m.latency,
        );
        for (name, value) in [
            ("hits", io.hits),
            ("misses", io.misses),
            ("evictions", io.evictions),
            ("pages_read", io.pages_read),
            ("pages_written", io.pages_written),
            ("wal_bytes", io.wal_bytes),
        ] {
            prom.counter(
                &format!("fm_store_{name}_total"),
                "Store IO counter (buffer pool and WAL).",
                &[],
                value,
            );
        }
        for (name, value) in c.named() {
            prom.counter(
                &format!("fm_server_{name}_total"),
                "Serving-layer counter.",
                &[],
                value,
            );
        }
        prom.gauge(
            "fm_server_queue_len",
            "Jobs waiting in the worker queue.",
            &[],
            self.queue.len() as f64,
        );
        prom.gauge(
            "fm_server_inflight",
            "Admitted but unanswered lookups.",
            &[],
            self.inflight.load(Ordering::SeqCst) as f64,
        );
        prom.gauge(
            "fm_server_replicas",
            "Matcher read replicas.",
            &[],
            self.replicas.len() as f64,
        );
        for (i, served) in self.telemetry.replica_served().iter().enumerate() {
            let index = i.to_string();
            prom.counter(
                "fm_server_replica_served_total",
                "Jobs served, per worker-pinned replica.",
                &[("replica", &index)],
                *served,
            );
        }
        for snap in self.telemetry.verb_snapshots() {
            for (phase, hist) in [
                ("queue", &snap.queue),
                ("service", &snap.service),
                ("write", &snap.write),
            ] {
                if hist.count > 0 {
                    prom.histogram(
                        "fm_server_phase_us",
                        "Per-verb request phase time (queue-wait, service, reply write), µs.",
                        &[("verb", snap.verb), ("phase", phase)],
                        hist,
                    );
                }
            }
        }
        prom.counter(
            "fm_server_slow_logged_total",
            "Requests recorded in the slow-query log.",
            &[],
            self.telemetry.slow().logged(),
        );
        prom.counter(
            "fm_server_telemetry_windows_total",
            "Sampling windows published since boot.",
            &[],
            self.telemetry.series.pushed(),
        );
        prom.counter(
            "fm_server_telemetry_dropped_total",
            "Sampler windows dropped on ring contention.",
            &[],
            self.telemetry.series.dropped(),
        );
        protocol::ok_reply(
            elapsed_us(received),
            vec![("exposition", Json::from(prom.finish()))],
        )
    }

    /// The `timeseries` verb: the newest `n` sampler windows as JSON.
    fn timeseries_reply(&self, n: usize, received: Instant) -> Json {
        let capacity = self.telemetry.series.capacity();
        let windows = self.telemetry.series.recent(n.clamp(1, capacity));
        let docs = windows
            .iter()
            .map(|w| {
                let mut fields = vec![
                    ("seq", Json::from(w.seq)),
                    ("start_us", Json::from(w.start_us)),
                    ("dur_us", Json::from(w.dur_us)),
                    (
                        "counters",
                        Json::Obj(
                            w.counters
                                .iter()
                                .map(|(name, v)| (name.clone(), Json::from(*v)))
                                .collect(),
                        ),
                    ),
                    (
                        "gauges",
                        Json::Obj(
                            w.gauges
                                .iter()
                                .map(|(name, v)| (name.clone(), Json::from(*v)))
                                .collect(),
                        ),
                    ),
                ];
                if !w.verbs.is_empty() {
                    fields.push((
                        "verbs",
                        Json::Obj(
                            w.verbs
                                .iter()
                                .map(|(name, snap)| {
                                    (
                                        name.clone(),
                                        Json::obj(vec![
                                            ("count", Json::from(snap.count)),
                                            ("sum_us", Json::from(snap.sum_us)),
                                            ("p50_us", Json::from(snap.p50_us())),
                                            ("p99_us", Json::from(snap.p99_us())),
                                            (
                                                "buckets",
                                                Json::Arr(
                                                    snap.buckets
                                                        .iter()
                                                        .map(|&b| Json::from(b))
                                                        .collect(),
                                                ),
                                            ),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    ));
                }
                Json::obj(fields)
            })
            .collect();
        protocol::ok_reply(
            elapsed_us(received),
            vec![
                ("window_ms", Json::from(self.config.telemetry_window_ms)),
                ("capacity", Json::from(capacity)),
                ("pushed", Json::from(self.telemetry.series.pushed())),
                ("windows", Json::Arr(docs)),
            ],
        )
    }

    fn traces_reply(&self, k: usize, received: Instant) -> Json {
        let traces = self.primary().slowest_traces(k);
        protocol::ok_reply(
            elapsed_us(received),
            vec![(
                "traces",
                Json::Arr(
                    traces
                        .iter()
                        .map(|t| {
                            let mut fields = vec![
                                ("seq", Json::from(t.seq)),
                                ("kind", Json::from(t.kind.as_str())),
                                ("total_us", Json::from(t.total_us())),
                                ("spans", Json::from(t.spans.len())),
                            ];
                            if let Some(counters) = t.counters {
                                fields.push((
                                    "counters",
                                    Json::obj(vec![
                                        ("qgrams_probed", Json::from(counters.qgrams_probed)),
                                        (
                                            "candidates_fetched",
                                            Json::from(counters.candidates_fetched),
                                        ),
                                        ("fms_evals", Json::from(counters.fms_evals)),
                                        ("latency_us", Json::from(counters.latency_us)),
                                    ]),
                                ));
                            }
                            Json::Obj(
                                fields
                                    .into_iter()
                                    .map(|(name, value)| (name.to_string(), value))
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            )],
        )
    }
}
