//! Wire protocol: length-prefixed JSON frames and the request grammar.
//!
//! # Frame format
//!
//! Every message in both directions is one frame:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 (BE)  | payload: len bytes  |
//! +----------------+---------------------+
//! ```
//!
//! The payload is a UTF-8 JSON object. Frames larger than [`MAX_FRAME`]
//! are rejected with a `413` reply and the connection is closed (the
//! stream cannot be resynchronised past a length prefix we refuse to
//! read). A malformed payload inside a well-formed frame gets a `400`
//! reply and the connection stays usable — framing survives bad JSON.
//!
//! # Requests
//!
//! ```json
//! {"verb":"lookup","input":["Beoing Company","Seattle",null],"k":1,"c":0.0}
//! {"verb":"lookup_batch","inputs":[["a"],["b"]],"k":1,"c":0.0}
//! {"verb":"stats"}
//! {"verb":"trace_slowest","k":10}
//! {"verb":"metrics"}
//! {"verb":"timeseries","n":60}
//! {"verb":"health"}
//! {"verb":"shutdown"}
//! ```
//!
//! `lookup`/`lookup_batch` accept an optional `"deadline_ms"` (overrides
//! the server default; `0` = no deadline) and `lookup` a `"sleep_ms"`
//! test hook the server only honours when started with `allow_sleep`.
//!
//! # Responses
//!
//! Every response carries `"ok"` and `"latency_us"` (server-side
//! receive→reply time — the field the load generator aggregates).
//! Failures are `{"ok":false,"code":N,"error":"...","latency_us":N}`
//! with HTTP-flavoured codes: `400` bad request, `408` deadline
//! exceeded, `413` frame too large, `500` internal, `503` overloaded or
//! shutting down.

use std::io::{self, Read, Write};

use fm_core::Record;

use crate::json::{self, Json};

/// Hard cap on frame payload size, both directions (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// HTTP-flavoured status codes used in error replies.
pub mod code {
    pub const BAD_REQUEST: u16 = 400;
    pub const DEADLINE_EXCEEDED: u16 = 408;
    pub const FRAME_TOO_LARGE: u16 = 413;
    pub const INTERNAL: u16 = 500;
    pub const OVERLOADED: u16 = 503;
}

/// Write one frame: 4-byte big-endian length then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Encode and write a JSON frame.
pub fn write_json(w: &mut impl Write, doc: &Json) -> io::Result<()> {
    write_frame(w, doc.encode().as_bytes())
}

/// One observation from [`FrameReader::next_frame`].
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete payload.
    Frame(Vec<u8>),
    /// Peer closed the connection at a frame boundary (or mid-frame —
    /// either way there is nothing more to serve).
    Eof,
    /// The read timed out with no complete frame buffered. The caller
    /// polls its shutdown flag and calls again; buffered partial data is
    /// preserved across `Idle` returns.
    Idle,
}

/// Why a frame could not be produced.
#[derive(Debug)]
pub enum FrameError {
    /// Length prefix announced more than the permitted maximum. The
    /// connection must be closed after replying: the oversized payload
    /// is never read, so the stream position is unrecoverable.
    Oversized(usize),
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            FrameError::Io(e) => write!(f, "io error reading frame: {e}"),
        }
    }
}

/// Incremental frame decoder that tolerates read timeouts.
///
/// `std::io::Read::read_exact` may discard bytes already consumed when a
/// timeout interrupts it mid-frame; this reader instead appends whatever
/// arrives to an internal buffer and only slices complete frames out, so
/// a server thread can use short read timeouts as a shutdown poll
/// without corrupting the stream.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    #[must_use]
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Pull the next complete frame out of `stream`.
    pub fn next_frame(
        &mut self,
        stream: &mut impl Read,
        max: usize,
    ) -> Result<FrameEvent, FrameError> {
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if len > max {
                    return Err(FrameError::Oversized(len));
                }
                if self.buf.len() >= 4 + len {
                    let payload = self.buf[4..4 + len].to_vec();
                    self.buf.drain(..4 + len);
                    return Ok(FrameEvent::Frame(payload));
                }
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(FrameEvent::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(FrameEvent::Idle)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Lookup {
        input: Record,
        k: usize,
        c: f64,
        /// Per-request deadline override; `None` = server default,
        /// `Some(0)` = explicitly no deadline.
        deadline_ms: Option<u64>,
        /// Test hook: hold the worker for this long before the lookup
        /// (ignored unless the server enables `allow_sleep`).
        sleep_ms: u64,
    },
    LookupBatch {
        inputs: Vec<Record>,
        k: usize,
        c: f64,
        deadline_ms: Option<u64>,
    },
    Stats,
    TraceSlowest {
        k: usize,
    },
    /// Cumulative counters/gauges/histograms as Prometheus text
    /// exposition (in the reply's `"exposition"` field).
    Metrics,
    /// The newest `n` sampler windows from the rolling time-series.
    Timeseries {
        n: usize,
    },
    Health,
    Shutdown,
}

fn parse_record(value: &Json) -> Result<Record, String> {
    let cells = value.as_arr().ok_or("input must be an array of strings")?;
    if cells.is_empty() {
        return Err("input record has no columns".into());
    }
    let mut fields = Vec::with_capacity(cells.len());
    for cell in cells {
        match cell {
            Json::Str(s) => fields.push(Some(s.clone())),
            Json::Null => fields.push(None),
            other => return Err(format!("input cell must be string or null, got {other}")),
        }
    }
    Ok(Record::from_options(fields))
}

fn parse_k(doc: &Json) -> Result<usize, String> {
    match doc.get("k") {
        None => Ok(1),
        Some(v) => {
            let k = v.as_u64().ok_or("k must be a non-negative integer")? as usize;
            if k == 0 {
                return Err("k must be at least 1".into());
            }
            Ok(k)
        }
    }
}

fn parse_c(doc: &Json) -> Result<f64, String> {
    match doc.get("c") {
        None => Ok(0.0),
        Some(v) => {
            let c = v.as_f64().ok_or("c must be a number")?;
            if !(0.0..1.0).contains(&c) {
                return Err(format!("c must be in [0,1), got {c}"));
            }
            Ok(c)
        }
    }
}

fn parse_deadline(doc: &Json) -> Result<Option<u64>, String> {
    match doc.get("deadline_ms") {
        None => Ok(None),
        Some(v) => Ok(Some(
            v.as_u64()
                .ok_or("deadline_ms must be a non-negative integer")?,
        )),
    }
}

/// Parse one frame payload into a [`Request`].
pub fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let doc = json::parse(text)?;
    let verb = doc
        .get("verb")
        .and_then(Json::as_str)
        .ok_or("missing string field \"verb\"")?;
    match verb {
        "lookup" => Ok(Request::Lookup {
            input: parse_record(doc.get("input").ok_or("lookup: missing \"input\"")?)?,
            k: parse_k(&doc)?,
            c: parse_c(&doc)?,
            deadline_ms: parse_deadline(&doc)?,
            sleep_ms: match doc.get("sleep_ms") {
                None => 0,
                Some(v) => v
                    .as_u64()
                    .ok_or("sleep_ms must be a non-negative integer")?,
            },
        }),
        "lookup_batch" => {
            let items = doc
                .get("inputs")
                .and_then(Json::as_arr)
                .ok_or("lookup_batch: missing array field \"inputs\"")?;
            let inputs = items
                .iter()
                .map(parse_record)
                .collect::<Result<Vec<_>, _>>()?;
            if inputs.is_empty() {
                return Err("lookup_batch: \"inputs\" is empty".into());
            }
            Ok(Request::LookupBatch {
                inputs,
                k: parse_k(&doc)?,
                c: parse_c(&doc)?,
                deadline_ms: parse_deadline(&doc)?,
            })
        }
        "stats" => Ok(Request::Stats),
        "trace_slowest" => Ok(Request::TraceSlowest {
            k: match doc.get("k") {
                None => 10,
                Some(v) => v.as_u64().ok_or("k must be a non-negative integer")? as usize,
            },
        }),
        "metrics" => Ok(Request::Metrics),
        "timeseries" => Ok(Request::Timeseries {
            n: match doc.get("n") {
                None => 60,
                Some(v) => {
                    let n = v.as_u64().ok_or("n must be a non-negative integer")? as usize;
                    if n == 0 {
                        return Err("n must be at least 1".into());
                    }
                    n
                }
            },
        }),
        "health" => Ok(Request::Health),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// An error reply frame body.
#[must_use]
pub fn error_reply(code: u16, message: &str, latency_us: u64) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("code", Json::from(u64::from(code))),
        ("error", Json::from(message)),
        ("latency_us", Json::from(latency_us)),
    ])
}

/// A success reply: `{"ok":true,"latency_us":N,...fields}`.
#[must_use]
pub fn ok_reply(latency_us: u64, fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![
        ("ok", Json::Bool(true)),
        ("latency_us", Json::from(latency_us)),
    ];
    all.extend(fields);
    Json::obj(all)
}

/// Serialize the matches of a [`fm_core::MatchResult`].
#[must_use]
pub fn matches_to_json(result: &fm_core::MatchResult) -> Json {
    Json::Arr(
        result
            .matches
            .iter()
            .map(|m| {
                Json::obj(vec![
                    ("tid", Json::from(u64::from(m.tid))),
                    ("similarity", Json::from(m.similarity)),
                    (
                        "record",
                        Json::Arr(
                            m.record
                                .values()
                                .iter()
                                .map(|v| match v {
                                    Some(s) => Json::from(s.as_str()),
                                    None => Json::Null,
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"verb\":\"health\"}").expect("write");
        write_frame(&mut wire, b"").expect("write empty");
        let mut reader = FrameReader::new();
        let mut stream = io::Cursor::new(wire);
        match reader.next_frame(&mut stream, MAX_FRAME).expect("frame 1") {
            FrameEvent::Frame(p) => assert_eq!(p, b"{\"verb\":\"health\"}"),
            other => panic!("expected frame, got {other:?}"),
        }
        match reader.next_frame(&mut stream, MAX_FRAME).expect("frame 2") {
            FrameEvent::Frame(p) => assert!(p.is_empty()),
            other => panic!("expected frame, got {other:?}"),
        }
        assert!(matches!(
            reader.next_frame(&mut stream, MAX_FRAME).expect("eof"),
            FrameEvent::Eof
        ));
    }

    #[test]
    fn frames_survive_fragmented_reads() {
        // A reader that yields one byte per call, interleaved with
        // timeouts, must still reassemble the frame.
        struct Trickle {
            data: Vec<u8>,
            pos: usize,
            tick: usize,
        }
        impl Read for Trickle {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                self.tick += 1;
                if self.tick % 2 == 0 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
                }
                if self.pos >= self.data.len() {
                    return Ok(0);
                }
                out[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").expect("write");
        let mut stream = Trickle {
            data: wire,
            pos: 0,
            tick: 0,
        };
        let mut reader = FrameReader::new();
        let mut idles = 0;
        loop {
            match reader.next_frame(&mut stream, MAX_FRAME).expect("read") {
                FrameEvent::Frame(p) => {
                    assert_eq!(p, b"abcdef");
                    break;
                }
                FrameEvent::Idle => idles += 1,
                FrameEvent::Eof => panic!("eof before frame"),
            }
        }
        assert!(idles > 0, "trickle reader should have idled");
    }

    #[test]
    fn oversized_prefix_is_rejected_without_reading_payload() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        let mut reader = FrameReader::new();
        let mut stream = io::Cursor::new(wire);
        match reader.next_frame(&mut stream, MAX_FRAME) {
            Err(FrameError::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
            other => panic!("expected oversized error, got {other:?}"),
        }
    }

    #[test]
    fn parses_lookup() {
        let req = parse_request(
            br#"{"verb":"lookup","input":["Boeing Company",null],"k":3,"c":0.5,"deadline_ms":250}"#,
        )
        .expect("parse");
        match req {
            Request::Lookup {
                input,
                k,
                c,
                deadline_ms,
                sleep_ms,
            } => {
                assert_eq!(input.get(0), Some("Boeing Company"));
                assert_eq!(input.get(1), None);
                assert_eq!(k, 3);
                assert!((c - 0.5).abs() < 1e-12);
                assert_eq!(deadline_ms, Some(250));
                assert_eq!(sleep_ms, 0);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_requests() {
        for bad in [
            &b"not json"[..],
            br#"{"verb":"fly"}"#,
            br#"{"verb":"lookup"}"#,
            br#"{"verb":"lookup","input":[]}"#,
            br#"{"verb":"lookup","input":[1]}"#,
            br#"{"verb":"lookup","input":["a"],"k":0}"#,
            br#"{"verb":"lookup","input":["a"],"c":1.5}"#,
            br#"{"verb":"lookup_batch","inputs":[]}"#,
            b"\xff\xfe",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn error_reply_shape() {
        let reply = error_reply(code::OVERLOADED, "overloaded", 12);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(reply.get("code").and_then(Json::as_u64), Some(503));
        assert_eq!(reply.get("latency_us").and_then(Json::as_u64), Some(12));
    }
}
