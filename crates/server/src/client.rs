//! A blocking protocol client: one connection, strict request→response.
//!
//! Shared by the `fuzzymatch client`/`ping` CLI verbs, the `bench_load`
//! load generator, the protocol tests, and the `xtask ci` smoke test —
//! one implementation of framing and reply parsing instead of four.

use std::io;
use std::net::TcpStream;

use fm_core::Record;

use crate::json::Json;
use crate::protocol::{self, FrameError, FrameEvent, FrameReader, MAX_FRAME};

/// Why a request failed client-side.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// The server closed the connection before replying (expected after
    /// a drain; unexpected otherwise).
    Disconnected,
    /// The reply frame was not a valid protocol response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One match inside a [`LookupReply`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyMatch {
    pub tid: u32,
    pub similarity: f64,
    pub record: Vec<Option<String>>,
}

/// A parsed `lookup` response (success or protocol-level error).
#[derive(Debug, Clone, PartialEq)]
pub struct LookupReply {
    pub ok: bool,
    /// Error code (`0` on success).
    pub code: u16,
    /// Error message (empty on success).
    pub error: String,
    /// Server-side receive→reply latency.
    pub latency_us: u64,
    /// Matcher-side lookup latency (success only).
    pub lookup_us: u64,
    pub matches: Vec<ReplyMatch>,
}

impl LookupReply {
    /// Interpret a raw reply document.
    pub fn from_json(doc: &Json) -> Result<LookupReply, ClientError> {
        let ok = doc
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol("reply missing \"ok\"".into()))?;
        let latency_us = doc.get("latency_us").and_then(Json::as_u64).unwrap_or(0);
        if !ok {
            return Ok(LookupReply {
                ok: false,
                code: doc.get("code").and_then(Json::as_u64).unwrap_or(0) as u16,
                error: doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                latency_us,
                lookup_us: 0,
                matches: Vec::new(),
            });
        }
        let mut matches = Vec::new();
        if let Some(items) = doc.get("matches").and_then(Json::as_arr) {
            for item in items {
                let tid = item
                    .get("tid")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ClientError::Protocol("match missing tid".into()))?;
                let similarity = item
                    .get("similarity")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ClientError::Protocol("match missing similarity".into()))?;
                let record = item
                    .get("record")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ClientError::Protocol("match missing record".into()))?
                    .iter()
                    .map(|cell| cell.as_str().map(str::to_string))
                    .collect();
                matches.push(ReplyMatch {
                    tid: u32::try_from(tid)
                        .map_err(|_| ClientError::Protocol(format!("tid {tid} out of range")))?,
                    similarity,
                    record,
                });
            }
        }
        Ok(LookupReply {
            ok: true,
            code: 0,
            error: String::new(),
            latency_us,
            lookup_us: doc.get("lookup_us").and_then(Json::as_u64).unwrap_or(0),
            matches,
        })
    }
}

/// Serialize a [`Record`] as the protocol's string-or-null array.
#[must_use]
pub fn record_to_json(record: &Record) -> Json {
    Json::Arr(
        record
            .values()
            .iter()
            .map(|v| match v {
                Some(s) => Json::from(s.as_str()),
                None => Json::Null,
            })
            .collect(),
    )
}

/// A blocking client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            reader: FrameReader::new(),
        })
    }

    /// Send one request document and block for its reply.
    pub fn request(&mut self, doc: &Json) -> Result<Json, ClientError> {
        protocol::write_json(&mut self.stream, doc)?;
        loop {
            match self.reader.next_frame(&mut self.stream, MAX_FRAME) {
                Ok(FrameEvent::Frame(payload)) => {
                    let text = std::str::from_utf8(&payload)
                        .map_err(|_| ClientError::Protocol("reply is not UTF-8".into()))?;
                    return crate::json::parse(text).map_err(ClientError::Protocol);
                }
                Ok(FrameEvent::Eof) => return Err(ClientError::Disconnected),
                Ok(FrameEvent::Idle) => {} // no read timeout set; defensive
                Err(FrameError::Oversized(n)) => {
                    return Err(ClientError::Protocol(format!(
                        "oversized reply ({n} bytes)"
                    )))
                }
                Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// `lookup` with the default deadline and no sleep hook.
    pub fn lookup(&mut self, input: &Record, k: usize, c: f64) -> Result<LookupReply, ClientError> {
        self.lookup_with(input, k, c, None, 0)
    }

    /// `lookup` with an explicit deadline override and/or the `sleep_ms`
    /// test hook.
    pub fn lookup_with(
        &mut self,
        input: &Record,
        k: usize,
        c: f64,
        deadline_ms: Option<u64>,
        sleep_ms: u64,
    ) -> Result<LookupReply, ClientError> {
        let mut fields = vec![
            ("verb", Json::from("lookup")),
            ("input", record_to_json(input)),
            ("k", Json::from(k)),
            ("c", Json::from(c)),
        ];
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms", Json::from(ms)));
        }
        if sleep_ms > 0 {
            fields.push(("sleep_ms", Json::from(sleep_ms)));
        }
        let reply = self.request(&Json::obj(fields))?;
        LookupReply::from_json(&reply)
    }

    /// `health`: the server's status string (`serving` / `draining`).
    pub fn health(&mut self) -> Result<String, ClientError> {
        let reply = self.request(&Json::obj(vec![("verb", Json::from("health"))]))?;
        reply
            .get("status")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("health reply missing status".into()))
    }

    /// `stats`: the raw snapshot document.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![("verb", Json::from("stats"))]))
    }

    /// `metrics`: the Prometheus text exposition body.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let reply = self.request(&Json::obj(vec![("verb", Json::from("metrics"))]))?;
        reply
            .get("exposition")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics reply missing exposition".into()))
    }

    /// `timeseries`: the raw document with the newest `n` sampler windows.
    pub fn timeseries(&mut self, n: usize) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![
            ("verb", Json::from("timeseries")),
            ("n", Json::from(n)),
        ]))
    }

    /// `trace_slowest`: the raw trace listing.
    pub fn trace_slowest(&mut self, k: usize) -> Result<Json, ClientError> {
        self.request(&Json::obj(vec![
            ("verb", Json::from("trace_slowest")),
            ("k", Json::from(k)),
        ]))
    }

    /// `shutdown`: ask the server to drain.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let reply = self.request(&Json::obj(vec![("verb", Json::from("shutdown"))]))?;
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("shutdown refused: {reply}")))
        }
    }
}
