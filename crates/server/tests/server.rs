//! End-to-end protocol tests against a real listening server: framing
//! errors, deadlines, overload, micro-batching, and the lossless
//! shutdown drain the ISSUE's acceptance criteria call out.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fm_core::{Config, FuzzyMatcher, Record};
use fm_server::{Client, ClientError, Json, Server, ServerConfig};
use fm_store::Database;

/// Table-1-style reference data (paper §1).
fn reference_rows() -> Vec<Record> {
    vec![
        Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
        Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
        Record::new(&["Casual Corner", "Redmond", "WA", "98052"]),
        Record::new(&["Company Boeing", "Bellevue", "WA", "98004"]),
        Record::new(&["Microsoft Corporation", "Redmond", "WA", "98052"]),
        Record::new(&["Nordstrom Incorporated", "Seattle", "WA", "98101"]),
    ]
}

fn dirty_input() -> Record {
    Record::new(&["Beoing Company", "Seattle", "WA", "98004"])
}

/// Build an in-memory matcher and start a server over it.
fn start_server(config: ServerConfig) -> (Server, String) {
    let db = Arc::new(Database::in_memory().expect("in-memory db"));
    let core_config = Config::default().with_columns(&["name", "city", "state", "zip"]);
    let matcher = Arc::new(
        FuzzyMatcher::build(&db, "reference", reference_rows().into_iter(), core_config)
            .expect("build matcher"),
    );
    let server = Server::start("127.0.0.1:0", matcher, db, config).expect("bind");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn shutdown_and_wait(server: Server, addr: &str) -> fm_server::ServerReport {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown verb");
    server.wait()
}

#[test]
fn lookup_round_trip_and_health() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.health().expect("health"), "serving");

    let reply = client.lookup(&dirty_input(), 1, 0.0).expect("lookup");
    assert!(reply.ok, "lookup failed: {}", reply.error);
    assert_eq!(reply.matches.len(), 1);
    assert_eq!(
        reply.matches[0].record[0].as_deref(),
        Some("Boeing Company"),
        "the dirty input must fuzzy-match its clean source tuple"
    );
    assert!(reply.matches[0].similarity > 0.5);
    assert!(reply.latency_us >= reply.lookup_us);

    let report = shutdown_and_wait(server, &addr);
    assert!(report.metrics.lookups >= 1);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn malformed_frame_gets_400_and_connection_survives() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");

    let reply = client
        .request(&Json::obj(vec![("verb", Json::from("fly"))]))
        .expect("reply to bad verb");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("code").and_then(Json::as_u64), Some(400));

    // Raw garbage payload inside a well-formed frame: still 400, and the
    // connection must stay usable afterwards.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    let garbage = b"this is not json";
    raw.write_all(&(garbage.len() as u32).to_be_bytes())
        .expect("len");
    raw.write_all(garbage).expect("payload");
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).expect("reply len");
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    raw.read_exact(&mut payload).expect("reply payload");
    let text = String::from_utf8(payload).expect("utf-8 reply");
    assert!(text.contains("\"code\":400"), "got: {text}");
    drop(raw);

    // The first client's connection survived its own 400.
    assert_eq!(client.health().expect("health after 400"), "serving");

    let report = shutdown_and_wait(server, &addr);
    assert_eq!(report.counters.malformed, 2);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn oversized_frame_gets_413_then_close() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut raw = TcpStream::connect(&addr).expect("connect");
    // Announce a 2 MiB payload; never send it.
    raw.write_all(&(2u32 << 20).to_be_bytes()).expect("len");
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).expect("reply len");
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    raw.read_exact(&mut payload).expect("reply payload");
    let text = String::from_utf8(payload).expect("utf-8 reply");
    assert!(text.contains("\"code\":413"), "got: {text}");
    // The server must close: the stream position is unrecoverable.
    let n = raw.read(&mut [0u8; 16]).expect("read after 413");
    assert_eq!(n, 0, "connection should be closed after an oversized frame");

    let report = shutdown_and_wait(server, &addr);
    assert_eq!(report.counters.oversized, 1);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn queued_request_past_deadline_gets_408() {
    let config = ServerConfig {
        workers: 1,
        allow_sleep: true,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);

    // Occupy the only worker for 400 ms from one connection...
    let addr_sleeper = addr.clone();
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_sleeper).expect("connect sleeper");
        client
            .lookup_with(&dirty_input(), 1, 0.0, None, 400)
            .expect("sleeper lookup")
    });
    std::thread::sleep(Duration::from_millis(100));

    // ...so this 50 ms-deadline request expires while queued.
    let mut client = Client::connect(&addr).expect("connect");
    let reply = client
        .lookup_with(&dirty_input(), 1, 0.0, Some(50), 0)
        .expect("deadline lookup");
    assert!(!reply.ok);
    assert_eq!(
        reply.code, 408,
        "expected deadline_exceeded: {}",
        reply.error
    );

    let slept = sleeper.join().expect("sleeper thread");
    assert!(slept.ok, "sleeper should still succeed: {}", slept.error);

    let report = shutdown_and_wait(server, &addr);
    assert_eq!(report.counters.deadline_expired, 1);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn overload_beyond_queue_depth_gets_503() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        max_inflight: 10, // out of the way: the queue is the limiter here
        allow_sleep: true,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);

    let addr_sleeper = addr.clone();
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_sleeper).expect("connect sleeper");
        client
            .lookup_with(&dirty_input(), 1, 0.0, None, 400)
            .expect("sleeper lookup")
    });
    std::thread::sleep(Duration::from_millis(100)); // sleeper now holds the worker

    // Fills the depth-1 queue and blocks awaiting the worker.
    let addr_queued = addr.clone();
    let queued = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_queued).expect("connect queued");
        client
            .lookup(&dirty_input(), 1, 0.0)
            .expect("queued lookup")
    });
    std::thread::sleep(Duration::from_millis(100));

    // Queue full → explicit overload reply, immediately.
    let mut client = Client::connect(&addr).expect("connect");
    let reply = client
        .lookup(&dirty_input(), 1, 0.0)
        .expect("overload lookup");
    assert!(!reply.ok);
    assert_eq!(reply.code, 503, "expected overload: {}", reply.error);
    assert!(reply.error.contains("overloaded"), "got: {}", reply.error);

    assert!(sleeper.join().expect("sleeper").ok);
    assert!(queued.join().expect("queued").ok);

    let report = shutdown_and_wait(server, &addr);
    assert_eq!(report.counters.rejected_overload, 1);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn inflight_cap_rejects_before_queue() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 8,
        max_inflight: 1,
        allow_sleep: true,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);

    let addr_sleeper = addr.clone();
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_sleeper).expect("connect sleeper");
        client
            .lookup_with(&dirty_input(), 1, 0.0, None, 300)
            .expect("sleeper lookup")
    });
    std::thread::sleep(Duration::from_millis(100));

    let mut client = Client::connect(&addr).expect("connect");
    let reply = client
        .lookup(&dirty_input(), 1, 0.0)
        .expect("capped lookup");
    assert!(!reply.ok);
    assert_eq!(reply.code, 503);
    assert!(reply.error.contains("in flight"), "got: {}", reply.error);

    assert!(sleeper.join().expect("sleeper").ok);
    let report = shutdown_and_wait(server, &addr);
    assert_eq!(report.counters.rejected_overload, 1);
}

#[test]
fn queued_singletons_get_micro_batched() {
    let config = ServerConfig {
        workers: 1,
        allow_sleep: true,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);

    // Hold the worker, then pile up compatible singletons behind it.
    let addr_sleeper = addr.clone();
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_sleeper).expect("connect sleeper");
        client
            .lookup_with(&dirty_input(), 1, 0.0, None, 300)
            .expect("sleeper lookup")
    });
    std::thread::sleep(Duration::from_millis(100));

    let waiters: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect waiter");
                client
                    .lookup(&dirty_input(), 1, 0.0)
                    .expect("waiter lookup")
            })
        })
        .collect();
    for waiter in waiters {
        let reply = waiter.join().expect("waiter thread");
        assert!(reply.ok, "batched lookup failed: {}", reply.error);
        assert_eq!(reply.matches.len(), 1);
    }
    assert!(sleeper.join().expect("sleeper").ok);

    let report = shutdown_and_wait(server, &addr);
    assert!(
        report.counters.batches >= 1,
        "expected at least one fused batch, counters: {:?}",
        report.counters
    );
    assert!(report.counters.batched_lookups >= 2);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn lookup_batch_verb_returns_per_input_results() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let inputs = Json::Arr(vec![
        fm_server::record_to_json(&dirty_input()),
        fm_server::record_to_json(&Record::new(&["Microsoft Corp", "Redmond", "WA", "98052"])),
    ]);
    let reply = client
        .request(&Json::obj(vec![
            ("verb", Json::from("lookup_batch")),
            ("inputs", inputs),
            ("k", Json::from(1u64)),
        ]))
        .expect("batch reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let results = reply
        .get("results")
        .and_then(Json::as_arr)
        .expect("results array");
    assert_eq!(results.len(), 2);
    for result in results {
        let matches = result
            .get("matches")
            .and_then(Json::as_arr)
            .expect("matches");
        assert_eq!(matches.len(), 1);
    }
    shutdown_and_wait(server, &addr);
}

#[test]
fn trace_slowest_sees_server_traffic() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..3 {
        assert!(client.lookup(&dirty_input(), 1, 0.0).expect("lookup").ok);
    }
    let reply = client.trace_slowest(16).expect("trace_slowest");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let traces = reply
        .get("traces")
        .and_then(Json::as_arr)
        .expect("traces array");
    assert!(
        traces
            .iter()
            .any(|t| t.get("kind").and_then(Json::as_str) == Some("query")),
        "server-originated query spans must reach the flight recorder"
    );
    shutdown_and_wait(server, &addr);
}

#[test]
fn stats_verb_reports_metrics_store_and_server_counters() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    assert!(client.lookup(&dirty_input(), 1, 0.0).expect("lookup").ok);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    let metrics = stats.get("metrics").expect("metrics section");
    assert!(metrics.get("lookups").and_then(Json::as_u64) >= Some(1));
    let store = stats.get("store").expect("store section");
    assert!(store.get("hits").and_then(Json::as_u64).is_some());
    let counters = stats.get("server").expect("server section");
    assert!(counters.get("frames").and_then(Json::as_u64) >= Some(1));
    shutdown_and_wait(server, &addr);
}

/// Extract the value of an *unlabelled* sample line from Prometheus
/// exposition text (`name value`).
fn prom_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let value = rest.strip_prefix(' ')?;
        value.parse().ok()
    })
}

#[test]
fn metrics_exposition_matches_stats_exactly_when_quiesced() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..5 {
        assert!(client.lookup(&dirty_input(), 1, 0.0).expect("lookup").ok);
    }

    // Quiesced: this connection is the only client and every lookup has
    // been answered, so the scrape and the stats call read identical
    // matcher state.
    let text = client.metrics_text().expect("metrics");
    let summary = fm_core::telemetry::validate_exposition(&text).expect("exposition must validate");
    assert!(
        summary.samples > 20,
        "suspiciously small scrape: {summary:?}"
    );
    assert!(summary.histogram_series >= 2, "{summary:?}");

    let stats = client.stats().expect("stats");
    let metrics = stats.get("metrics").expect("metrics section");
    let latency = metrics.get("latency").expect("latency section");
    let count = latency.get("count").and_then(Json::as_u64).expect("count");
    let sum_us = latency
        .get("sum_us")
        .and_then(Json::as_u64)
        .expect("sum_us");
    assert_eq!(
        prom_value(&text, "fm_lookup_latency_us_count"),
        Some(count as f64)
    );
    assert_eq!(
        prom_value(&text, "fm_lookup_latency_us_sum"),
        Some(sum_us as f64)
    );
    for name in ["lookups", "candidates", "fms_evals", "qgrams_probed"] {
        let from_stats = metrics.get(name).and_then(Json::as_u64).expect(name);
        assert_eq!(
            prom_value(&text, &format!("fm_{name}_total")),
            Some(from_stats as f64),
            "counter {name} must agree between metrics and stats"
        );
    }

    // The worker path fed the per-verb phase histograms.
    assert!(
        text.contains("fm_server_phase_us_bucket{verb=\"lookup\",phase=\"service\""),
        "missing lookup service histogram in:\n{text}"
    );
    assert!(
        text.contains("fm_server_phase_us_bucket{verb=\"lookup\",phase=\"write\""),
        "missing lookup write histogram"
    );
    let report = shutdown_and_wait(server, &addr);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn timeseries_accumulates_windows_with_correct_deltas() {
    let config = ServerConfig {
        telemetry_window_ms: 20,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..8 {
        assert!(client.lookup(&dirty_input(), 1, 0.0).expect("lookup").ok);
    }
    // Let the sampler publish several windows, including idle ones after
    // the traffic stops.
    std::thread::sleep(Duration::from_millis(250));

    let reply = client.timeseries(64).expect("timeseries");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("window_ms").and_then(Json::as_u64), Some(20));
    let windows = reply
        .get("windows")
        .and_then(Json::as_arr)
        .expect("windows array");
    assert!(
        windows.len() >= 3,
        "only {} windows published",
        windows.len()
    );

    let mut prev_seq = 0u64;
    let mut lookups_total = 0u64;
    for w in windows {
        let seq = w.get("seq").and_then(Json::as_u64).expect("seq");
        assert!(seq > prev_seq, "seqs must be strictly increasing");
        prev_seq = seq;
        assert!(w.get("dur_us").and_then(Json::as_u64).unwrap_or(0) > 0);
        let counters = w.get("counters").expect("counters");
        lookups_total += counters.get("lookups").and_then(Json::as_u64).unwrap_or(0);
    }
    assert!(
        lookups_total >= 8,
        "window deltas must add up to the traffic: saw {lookups_total}"
    );
    // The newest window covers only idle time — its deltas are zero.
    let idle = windows.last().expect("at least one window");
    assert_eq!(
        idle.get("counters")
            .and_then(|c| c.get("lookups"))
            .and_then(Json::as_u64),
        Some(0),
        "a zero-traffic window must report zero deltas"
    );
    shutdown_and_wait(server, &addr);
}

#[test]
fn queue_wait_and_slow_log_surface_in_stats() {
    let config = ServerConfig {
        workers: 1,
        allow_sleep: true,
        slow_us: 1000,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);

    // Occupy the only worker so the next lookup measurably queues.
    let addr_sleeper = addr.clone();
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_sleeper).expect("connect sleeper");
        client
            .lookup_with(&dirty_input(), 1, 0.0, None, 300)
            .expect("sleeper lookup")
    });
    std::thread::sleep(Duration::from_millis(100));

    let mut client = Client::connect(&addr).expect("connect");
    assert!(client.lookup(&dirty_input(), 1, 0.0).expect("queued").ok);
    assert!(sleeper.join().expect("sleeper").ok);

    let stats = client.stats().expect("stats");
    let server_section = stats.get("server").expect("server section");
    assert!(
        server_section.get("queue_waits").and_then(Json::as_u64) >= Some(1),
        "the queued lookup must be counted"
    );
    assert!(
        server_section.get("queue_wait_us").and_then(Json::as_u64) >= Some(50_000),
        "~200 ms of queueing must surface in queue_wait_us: {server_section}"
    );
    // The 300 ms sleeper blew the 1 ms slow threshold.
    assert!(
        server_section.get("slow_logged").and_then(Json::as_u64) >= Some(1),
        "slow requests must reach the slow-query log"
    );
    shutdown_and_wait(server, &addr);
}

#[test]
fn sampler_shutdown_during_drain_keeps_ledger_balanced() {
    let config = ServerConfig {
        telemetry_window_ms: 10,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..4 {
        assert!(client.lookup(&dirty_input(), 1, 0.0).expect("lookup").ok);
    }
    std::thread::sleep(Duration::from_millis(50)); // several live windows
    client.shutdown().expect("shutdown verb");
    // `wait` joins the sampler after the workers: a sampler that missed
    // the stop signal would hang this call.
    let report = server.wait();
    assert!(
        report.counters.ledger_balanced(),
        "drain with an active sampler must not lose responses"
    );
}

/// The acceptance-criteria drain test: concurrent clients hammer
/// `lookup` while one issues `shutdown`, with lookups dispatched in
/// parallel across matcher replicas. The drain must complete, and no
/// in-flight response may be lost — every frame the server decoded gets
/// exactly one response attempt (the replica-safe ledger).
#[test]
fn shutdown_drains_without_losing_inflight_responses() {
    let config = ServerConfig {
        workers: 2,
        queue_depth: 32,
        replicas: 2,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);
    let draining = Arc::new(AtomicBool::new(false));

    let hammers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let draining = Arc::clone(&draining);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect hammer");
                let mut answered = 0u64;
                let mut ok = 0u64;
                loop {
                    match client.lookup(&dirty_input(), 1, 0.0) {
                        Ok(reply) => {
                            answered += 1;
                            if reply.ok {
                                ok += 1;
                            } else {
                                // Overload or drain rejections are valid
                                // responses; stop once the drain begins.
                                assert_eq!(reply.code, 503, "unexpected: {}", reply.error);
                                if draining.load(Ordering::SeqCst) {
                                    break;
                                }
                            }
                        }
                        // The connection closing is only acceptable once
                        // the drain is under way.
                        Err(ClientError::Disconnected) => {
                            assert!(
                                draining.load(Ordering::SeqCst),
                                "server closed a connection before shutdown"
                            );
                            break;
                        }
                        Err(e) => panic!("hammer request failed: {e}"),
                    }
                }
                (answered, ok)
            })
        })
        .collect();

    // Let the hammering build up real concurrency, then drain.
    std::thread::sleep(Duration::from_millis(200));
    {
        let mut client = Client::connect(&addr).expect("connect shutdown");
        draining.store(true, Ordering::SeqCst);
        client.shutdown().expect("shutdown verb");
        assert_eq!(client.health().expect("health while draining"), "draining");
    }

    let mut answered = 0u64;
    let mut ok = 0u64;
    for hammer in hammers {
        let (a, o) = hammer.join().expect("hammer thread");
        answered += a;
        ok += o;
    }
    assert!(ok > 0, "hammers should have completed some lookups");

    let report = server.wait();
    assert!(
        report.counters.ledger_balanced(),
        "every decoded request frame must get exactly one response attempt: \
         {} frames vs {} responses + {} write failures",
        report.counters.frames,
        report.counters.responses,
        report.counters.write_failures
    );
    // The hammers here wait for every reply before disconnecting, so the
    // stronger pre-replica invariant also still holds in this test: no
    // reply attempt ever hit a closed socket.
    assert_eq!(
        report.counters.write_failures, 0,
        "no lost in-flight responses"
    );
    assert!(report.counters.responses >= answered);
    assert!(report.metrics.lookups >= ok);
}
