//! End-to-end protocol tests against a real listening server: framing
//! errors, deadlines, overload, micro-batching, and the lossless
//! shutdown drain the ISSUE's acceptance criteria call out.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fm_core::{Config, FuzzyMatcher, Record};
use fm_server::{Client, ClientError, Json, Server, ServerConfig};
use fm_store::Database;

/// Table-1-style reference data (paper §1).
fn reference_rows() -> Vec<Record> {
    vec![
        Record::new(&["Boeing Company", "Seattle", "WA", "98004"]),
        Record::new(&["Bon Corporation", "Seattle", "WA", "98014"]),
        Record::new(&["Casual Corner", "Redmond", "WA", "98052"]),
        Record::new(&["Company Boeing", "Bellevue", "WA", "98004"]),
        Record::new(&["Microsoft Corporation", "Redmond", "WA", "98052"]),
        Record::new(&["Nordstrom Incorporated", "Seattle", "WA", "98101"]),
    ]
}

fn dirty_input() -> Record {
    Record::new(&["Beoing Company", "Seattle", "WA", "98004"])
}

/// Build an in-memory matcher and start a server over it.
fn start_server(config: ServerConfig) -> (Server, String) {
    let db = Arc::new(Database::in_memory().expect("in-memory db"));
    let core_config = Config::default().with_columns(&["name", "city", "state", "zip"]);
    let matcher = Arc::new(
        FuzzyMatcher::build(&db, "reference", reference_rows().into_iter(), core_config)
            .expect("build matcher"),
    );
    let server = Server::start("127.0.0.1:0", matcher, db, config).expect("bind");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn shutdown_and_wait(server: Server, addr: &str) -> fm_server::ServerReport {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown verb");
    server.wait()
}

#[test]
fn lookup_round_trip_and_health() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.health().expect("health"), "serving");

    let reply = client.lookup(&dirty_input(), 1, 0.0).expect("lookup");
    assert!(reply.ok, "lookup failed: {}", reply.error);
    assert_eq!(reply.matches.len(), 1);
    assert_eq!(
        reply.matches[0].record[0].as_deref(),
        Some("Boeing Company"),
        "the dirty input must fuzzy-match its clean source tuple"
    );
    assert!(reply.matches[0].similarity > 0.5);
    assert!(reply.latency_us >= reply.lookup_us);

    let report = shutdown_and_wait(server, &addr);
    assert!(report.metrics.lookups >= 1);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn malformed_frame_gets_400_and_connection_survives() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");

    let reply = client
        .request(&Json::obj(vec![("verb", Json::from("fly"))]))
        .expect("reply to bad verb");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("code").and_then(Json::as_u64), Some(400));

    // Raw garbage payload inside a well-formed frame: still 400, and the
    // connection must stay usable afterwards.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    let garbage = b"this is not json";
    raw.write_all(&(garbage.len() as u32).to_be_bytes())
        .expect("len");
    raw.write_all(garbage).expect("payload");
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).expect("reply len");
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    raw.read_exact(&mut payload).expect("reply payload");
    let text = String::from_utf8(payload).expect("utf-8 reply");
    assert!(text.contains("\"code\":400"), "got: {text}");
    drop(raw);

    // The first client's connection survived its own 400.
    assert_eq!(client.health().expect("health after 400"), "serving");

    let report = shutdown_and_wait(server, &addr);
    assert_eq!(report.counters.malformed, 2);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn oversized_frame_gets_413_then_close() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut raw = TcpStream::connect(&addr).expect("connect");
    // Announce a 2 MiB payload; never send it.
    raw.write_all(&(2u32 << 20).to_be_bytes()).expect("len");
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).expect("reply len");
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    raw.read_exact(&mut payload).expect("reply payload");
    let text = String::from_utf8(payload).expect("utf-8 reply");
    assert!(text.contains("\"code\":413"), "got: {text}");
    // The server must close: the stream position is unrecoverable.
    let n = raw.read(&mut [0u8; 16]).expect("read after 413");
    assert_eq!(n, 0, "connection should be closed after an oversized frame");

    let report = shutdown_and_wait(server, &addr);
    assert_eq!(report.counters.oversized, 1);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn queued_request_past_deadline_gets_408() {
    let config = ServerConfig {
        workers: 1,
        allow_sleep: true,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);

    // Occupy the only worker for 400 ms from one connection...
    let addr_sleeper = addr.clone();
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_sleeper).expect("connect sleeper");
        client
            .lookup_with(&dirty_input(), 1, 0.0, None, 400)
            .expect("sleeper lookup")
    });
    std::thread::sleep(Duration::from_millis(100));

    // ...so this 50 ms-deadline request expires while queued.
    let mut client = Client::connect(&addr).expect("connect");
    let reply = client
        .lookup_with(&dirty_input(), 1, 0.0, Some(50), 0)
        .expect("deadline lookup");
    assert!(!reply.ok);
    assert_eq!(
        reply.code, 408,
        "expected deadline_exceeded: {}",
        reply.error
    );

    let slept = sleeper.join().expect("sleeper thread");
    assert!(slept.ok, "sleeper should still succeed: {}", slept.error);

    let report = shutdown_and_wait(server, &addr);
    assert_eq!(report.counters.deadline_expired, 1);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn overload_beyond_queue_depth_gets_503() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        max_inflight: 10, // out of the way: the queue is the limiter here
        allow_sleep: true,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);

    let addr_sleeper = addr.clone();
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_sleeper).expect("connect sleeper");
        client
            .lookup_with(&dirty_input(), 1, 0.0, None, 400)
            .expect("sleeper lookup")
    });
    std::thread::sleep(Duration::from_millis(100)); // sleeper now holds the worker

    // Fills the depth-1 queue and blocks awaiting the worker.
    let addr_queued = addr.clone();
    let queued = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_queued).expect("connect queued");
        client
            .lookup(&dirty_input(), 1, 0.0)
            .expect("queued lookup")
    });
    std::thread::sleep(Duration::from_millis(100));

    // Queue full → explicit overload reply, immediately.
    let mut client = Client::connect(&addr).expect("connect");
    let reply = client
        .lookup(&dirty_input(), 1, 0.0)
        .expect("overload lookup");
    assert!(!reply.ok);
    assert_eq!(reply.code, 503, "expected overload: {}", reply.error);
    assert!(reply.error.contains("overloaded"), "got: {}", reply.error);

    assert!(sleeper.join().expect("sleeper").ok);
    assert!(queued.join().expect("queued").ok);

    let report = shutdown_and_wait(server, &addr);
    assert_eq!(report.counters.rejected_overload, 1);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn inflight_cap_rejects_before_queue() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 8,
        max_inflight: 1,
        allow_sleep: true,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);

    let addr_sleeper = addr.clone();
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_sleeper).expect("connect sleeper");
        client
            .lookup_with(&dirty_input(), 1, 0.0, None, 300)
            .expect("sleeper lookup")
    });
    std::thread::sleep(Duration::from_millis(100));

    let mut client = Client::connect(&addr).expect("connect");
    let reply = client
        .lookup(&dirty_input(), 1, 0.0)
        .expect("capped lookup");
    assert!(!reply.ok);
    assert_eq!(reply.code, 503);
    assert!(reply.error.contains("in flight"), "got: {}", reply.error);

    assert!(sleeper.join().expect("sleeper").ok);
    let report = shutdown_and_wait(server, &addr);
    assert_eq!(report.counters.rejected_overload, 1);
}

#[test]
fn queued_singletons_get_micro_batched() {
    let config = ServerConfig {
        workers: 1,
        allow_sleep: true,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);

    // Hold the worker, then pile up compatible singletons behind it.
    let addr_sleeper = addr.clone();
    let sleeper = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_sleeper).expect("connect sleeper");
        client
            .lookup_with(&dirty_input(), 1, 0.0, None, 300)
            .expect("sleeper lookup")
    });
    std::thread::sleep(Duration::from_millis(100));

    let waiters: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect waiter");
                client
                    .lookup(&dirty_input(), 1, 0.0)
                    .expect("waiter lookup")
            })
        })
        .collect();
    for waiter in waiters {
        let reply = waiter.join().expect("waiter thread");
        assert!(reply.ok, "batched lookup failed: {}", reply.error);
        assert_eq!(reply.matches.len(), 1);
    }
    assert!(sleeper.join().expect("sleeper").ok);

    let report = shutdown_and_wait(server, &addr);
    assert!(
        report.counters.batches >= 1,
        "expected at least one fused batch, counters: {:?}",
        report.counters
    );
    assert!(report.counters.batched_lookups >= 2);
    assert_eq!(report.counters.frames, report.counters.responses);
}

#[test]
fn lookup_batch_verb_returns_per_input_results() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let inputs = Json::Arr(vec![
        fm_server::record_to_json(&dirty_input()),
        fm_server::record_to_json(&Record::new(&["Microsoft Corp", "Redmond", "WA", "98052"])),
    ]);
    let reply = client
        .request(&Json::obj(vec![
            ("verb", Json::from("lookup_batch")),
            ("inputs", inputs),
            ("k", Json::from(1u64)),
        ]))
        .expect("batch reply");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let results = reply
        .get("results")
        .and_then(Json::as_arr)
        .expect("results array");
    assert_eq!(results.len(), 2);
    for result in results {
        let matches = result
            .get("matches")
            .and_then(Json::as_arr)
            .expect("matches");
        assert_eq!(matches.len(), 1);
    }
    shutdown_and_wait(server, &addr);
}

#[test]
fn trace_slowest_sees_server_traffic() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..3 {
        assert!(client.lookup(&dirty_input(), 1, 0.0).expect("lookup").ok);
    }
    let reply = client.trace_slowest(16).expect("trace_slowest");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let traces = reply
        .get("traces")
        .and_then(Json::as_arr)
        .expect("traces array");
    assert!(
        traces
            .iter()
            .any(|t| t.get("kind").and_then(Json::as_str) == Some("query")),
        "server-originated query spans must reach the flight recorder"
    );
    shutdown_and_wait(server, &addr);
}

#[test]
fn stats_verb_reports_metrics_store_and_server_counters() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    assert!(client.lookup(&dirty_input(), 1, 0.0).expect("lookup").ok);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    let metrics = stats.get("metrics").expect("metrics section");
    assert!(metrics.get("lookups").and_then(Json::as_u64) >= Some(1));
    let store = stats.get("store").expect("store section");
    assert!(store.get("hits").and_then(Json::as_u64).is_some());
    let counters = stats.get("server").expect("server section");
    assert!(counters.get("frames").and_then(Json::as_u64) >= Some(1));
    shutdown_and_wait(server, &addr);
}

/// The acceptance-criteria drain test: concurrent clients hammer
/// `lookup` while one issues `shutdown`, with lookups dispatched in
/// parallel across matcher replicas. The drain must complete, and no
/// in-flight response may be lost — every frame the server decoded gets
/// exactly one response attempt (the replica-safe ledger).
#[test]
fn shutdown_drains_without_losing_inflight_responses() {
    let config = ServerConfig {
        workers: 2,
        queue_depth: 32,
        replicas: 2,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(config);
    let draining = Arc::new(AtomicBool::new(false));

    let hammers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let draining = Arc::clone(&draining);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect hammer");
                let mut answered = 0u64;
                let mut ok = 0u64;
                loop {
                    match client.lookup(&dirty_input(), 1, 0.0) {
                        Ok(reply) => {
                            answered += 1;
                            if reply.ok {
                                ok += 1;
                            } else {
                                // Overload or drain rejections are valid
                                // responses; stop once the drain begins.
                                assert_eq!(reply.code, 503, "unexpected: {}", reply.error);
                                if draining.load(Ordering::SeqCst) {
                                    break;
                                }
                            }
                        }
                        // The connection closing is only acceptable once
                        // the drain is under way.
                        Err(ClientError::Disconnected) => {
                            assert!(
                                draining.load(Ordering::SeqCst),
                                "server closed a connection before shutdown"
                            );
                            break;
                        }
                        Err(e) => panic!("hammer request failed: {e}"),
                    }
                }
                (answered, ok)
            })
        })
        .collect();

    // Let the hammering build up real concurrency, then drain.
    std::thread::sleep(Duration::from_millis(200));
    {
        let mut client = Client::connect(&addr).expect("connect shutdown");
        draining.store(true, Ordering::SeqCst);
        client.shutdown().expect("shutdown verb");
        assert_eq!(client.health().expect("health while draining"), "draining");
    }

    let mut answered = 0u64;
    let mut ok = 0u64;
    for hammer in hammers {
        let (a, o) = hammer.join().expect("hammer thread");
        answered += a;
        ok += o;
    }
    assert!(ok > 0, "hammers should have completed some lookups");

    let report = server.wait();
    assert!(
        report.counters.ledger_balanced(),
        "every decoded request frame must get exactly one response attempt: \
         {} frames vs {} responses + {} write failures",
        report.counters.frames,
        report.counters.responses,
        report.counters.write_failures
    );
    // The hammers here wait for every reply before disconnecting, so the
    // stronger pre-replica invariant also still holds in this test: no
    // reply attempt ever hit a closed socket.
    assert_eq!(
        report.counters.write_failures, 0,
        "no lost in-flight responses"
    );
    assert!(report.counters.responses >= answered);
    assert!(report.metrics.lookups >= ok);
}
